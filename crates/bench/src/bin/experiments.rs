//! Experiment harness: regenerates every quantitative artifact of the
//! paper (DESIGN.md experiment index E1–E7). Each experiment prints the
//! paper's claim next to the measured/simulated result.
//!
//! ```text
//! cargo run --release -p parinda-bench --bin experiments -- all
//! cargo run --release -p parinda-bench --bin experiments -- e3
//! ```

use std::time::Instant;

use parinda::{verify_whatif_index, AutoPartConfig, SelectionMethod, WhatIfIndex};
use parinda_bench::experiments;
use parinda_bench::{execute_workload, laptop_session, paper_session, workload, Table};
use parinda_catalog::MetadataProvider;
use parinda_inum::{CandidateIndex, Configuration, InumModel};
use parinda_optimizer::CostParams;
use parinda_whatif::{simulate_index, HypotheticalCatalog};
use parinda_workload::generate_queries;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "e1" => e1_workload_speedup(),
        "e2" => e2_whatif_vs_materialize(),
        "e3" => e3_inum_speedup(),
        "e4" => e4_ilp_vs_greedy(),
        "e5" => e5_size_accuracy(),
        "e6" => e6_autopart(),
        "e7" => e7_interactive(),
        "e8" => e8_parallel_scaling(),
        "e10" => e10_scaling(),
        "a1" => a1_inum_ablation(),
        "json" => {
            // Registry-driven: every machine-readable artifact lives in
            // experiments::JSON_BENCHES; `json` / `json all` emits them
            // all, `json <name> [path]` emits one.
            let which = std::env::args().nth(2).unwrap_or_else(|| "all".into());
            let selected: Vec<&experiments::JsonBench> = if which == "all" {
                experiments::JSON_BENCHES.iter().collect()
            } else if let Some(b) = experiments::JSON_BENCHES.iter().find(|b| b.name == which) {
                vec![b]
            } else {
                let names: Vec<&str> =
                    experiments::JSON_BENCHES.iter().map(|b| b.name).collect();
                eprintln!("unknown json bench `{which}`; use {}, or all", names.join(", "));
                std::process::exit(1);
            };
            let path_override = std::env::args().nth(3);
            for b in &selected {
                let path = match (&path_override, selected.len()) {
                    (Some(p), 1) => p.clone(),
                    _ => b.artifact.to_string(),
                };
                std::fs::write(&path, (b.generate)()).expect("write json artifact");
                println!("wrote {path}");
            }
        }
        "all" => {
            e1_workload_speedup();
            e2_whatif_vs_materialize();
            e3_inum_speedup();
            e4_ilp_vs_greedy();
            e5_size_accuracy();
            e6_autopart();
            e7_interactive();
            e8_parallel_scaling();
            e10_scaling();
            a1_inum_ablation();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use e1..e8, e10, a1, json [name|all] [path], or all"
            );
            std::process::exit(1);
        }
    }
}

fn banner(id: &str, claim: &str) {
    println!("\n==========================================================================");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("==========================================================================");
}

/// Budget-degraded advisor cells are starred so a run under an advisor
/// budget cannot be mistaken for the exhaustive search result.
fn star(degraded: bool) -> &'static str {
    if degraded {
        "*"
    } else {
        ""
    }
}

/// Print the footnote explaining starred cells, if any row had one.
fn degraded_footnote(any: bool) {
    if any {
        println!("  * budget-degraded: best-so-far under the advisor budget, not the full search");
    }
}

/// E1 — "Using these techniques on analytical queries, we achieve speedups
/// ranging from 2x to 10x" (§1). Suggested partitions + indexes, estimated
/// at paper scale and *measured by execution* at laptop scale.
fn e1_workload_speedup() {
    // --- estimated, paper scale, per budget (shared with the golden
    // tests via the library; banner included) ---
    print!("{}", experiments::e1_report(false));

    // --- measured, laptop scale ---
    let (mut session, _) = laptop_session(20_000, 1);
    let wl = workload();
    let before = {
        let t0 = Instant::now();
        let rows = execute_workload(&session, &wl);
        (t0.elapsed(), rows)
    };
    let parts = session
        .suggest_partitions(&wl, AutoPartConfig::default())
        .expect("autopart");
    session.materialize_partitions(&parts).expect("partition build");
    let budget = session.catalog().total_size_bytes() / 5;
    let idx = session.suggest_indexes(&wl, budget, SelectionMethod::Ilp).expect("advisor");
    session.materialize_indexes(&idx).expect("index build");
    // execute the rewritten workload (queries now target fragments where
    // beneficial) against the new design
    let after = {
        let t0 = Instant::now();
        let rows = execute_workload(&session, &parts.rewritten);
        (t0.elapsed(), rows)
    };
    println!("measured (real execution, 20k-row laptop instance):");
    println!("  before: {:?} ({} rows)", before.0, before.1);
    println!("  after:  {:?} ({} rows)", after.0, after.1);
    println!(
        "  measured speedup: {:.2}x   [paper: 2x-10x]",
        before.0.as_secs_f64() / after.0.as_secs_f64()
    );
}

/// E2 — what-if simulation is "orders of magnitude faster" than building
/// the features (§1, §3.2).
fn e2_whatif_vs_materialize() {
    banner(
        "E2  what-if simulation vs physically building design features",
        "simulation is orders of magnitude faster",
    );
    let mut t = Table::new(&["# indexes", "simulate", "build", "ratio"]);
    for n in [1usize, 4, 16] {
        let (mut session, _) = laptop_session(20_000, 2);
        let photo = session.catalog().table_by_name("photoobj").unwrap().clone();
        // n distinct single-column indexes over photometric columns
        let cols: Vec<String> = photo
            .columns
            .iter()
            .skip(30)
            .take(n)
            .map(|c| c.name.clone())
            .collect();

        let t0 = Instant::now();
        let mut overlay = HypotheticalCatalog::new(session.catalog());
        for c in &cols {
            simulate_index(&mut overlay, &WhatIfIndex::new(format!("w_{c}"), "photoobj", &[c]))
                .expect("simulation");
        }
        let sim = t0.elapsed();
        drop(overlay);

        let t0 = Instant::now();
        for c in &cols {
            let id = session
                .catalog_mut()
                .create_index(&format!("b_{c}"), "photoobj", &[c])
                .expect("create");
            let (cat, db) = session.catalog_db_mut();
            db.build_index(cat, id);
        }
        let build = t0.elapsed();

        t.row(&[
            n.to_string(),
            format!("{sim:?}"),
            format!("{build:?}"),
            format!("{:.0}x", build.as_secs_f64() / sim.as_secs_f64().max(1e-9)),
        ]);
    }
    println!("\n{}", t.render());
}

/// E3 — INUM estimates "costs of millions of physical designs in the order
/// of minutes instead of days" (§3.4).
fn e3_inum_speedup() {
    print!("{}", experiments::e3_report(false));
}

/// E4 — "Typically ILP outperforms the greedy algorithms on workloads
/// containing a large number of queries" (§3.4).
///
/// Two baselines: the classic single-pass greedy ("greedy heuristic" of
/// the commercial tools — benefits computed once, interactions ignored)
/// and a stronger adaptive greedy that re-evaluates marginal benefits.
/// The ILP beats the classic greedy by ~10% at tight budgets and edges
/// out even the adaptive one at budget boundaries, while additionally
/// *proving* optimality.
fn e4_ilp_vs_greedy() {
    banner(
        "E4  ILP vs greedy index selection",
        "ILP outperforms greedy on large workloads",
    );
    use parinda_advisor::{
        generate_candidates, select_indexes_greedy, select_indexes_greedy_static,
        select_indexes_ilp, CandidateLimits,
    };
    let session = paper_session();
    let wl = workload();
    let cands = {
        let m = InumModel::build(session.catalog(), &wl, CostParams::default()).unwrap();
        generate_candidates(m.queries(), CandidateLimits::default())
    };

    // (a) budget sweep on the 30-query SDSS workload
    let mut t = Table::new(&[
        "budget",
        "ilp cost",
        "greedy(adaptive)",
        "greedy(classic)",
        "ilp vs adaptive",
        "ilp vs classic",
    ]);
    for mb in [400u64, 800, 1200, 1800, 2120] {
        let budget = mb * 1024 * 1024;
        let mut m1 = InumModel::build(session.catalog(), &wl, CostParams::default()).unwrap();
        let ilp = select_indexes_ilp(&mut m1, &cands, budget);
        let mut m2 = InumModel::build(session.catalog(), &wl, CostParams::default()).unwrap();
        let ga = select_indexes_greedy(&mut m2, &cands, budget);
        let mut m3 = InumModel::build(session.catalog(), &wl, CostParams::default()).unwrap();
        let gc = select_indexes_greedy_static(&mut m3, &cands, budget);
        let gap = |g: f64| (g - ilp.cost_after) / g * 100.0;
        t.row(&[
            format!("{mb} MB"),
            format!("{:.0}", ilp.cost_after),
            format!("{:.0}", ga.cost_after),
            format!("{:.0}", gc.cost_after),
            format!("+{:.2}%", gap(ga.cost_after)),
            format!("+{:.2}%", gap(gc.cost_after)),
        ]);
    }
    println!("\nquality, SDSS-30 (lower cost is better; +x% = greedy worse than ILP):");
    println!("{}", t.render());

    // (b) workload-size sweep: selection runtime
    let mut t = Table::new(&["queries", "ilp time", "greedy time", "ilp proven optimal"]);
    let mut any_degraded = false;
    for n in [5usize, 15, 30, 60, 120] {
        let wl = generate_queries(n, 42);
        let budget = session.catalog().total_size_bytes() / 10;
        let t0 = Instant::now();
        let sel = session.suggest_indexes(&wl, budget, SelectionMethod::Ilp).expect("ilp");
        let ilp_t = t0.elapsed();
        let t0 = Instant::now();
        session
            .suggest_indexes(&wl, budget, SelectionMethod::Greedy)
            .expect("greedy");
        let greedy_t = t0.elapsed();
        any_degraded |= sel.degraded;
        t.row(&[
            n.to_string(),
            format!("{ilp_t:.2?}"),
            format!("{greedy_t:.2?}"),
            format!("{}{}", if sel.proven_optimal { "yes" } else { "no" }, star(sel.degraded)),
        ]);
    }
    println!("search runtime, generated workloads:");
    println!("{}", t.render());
    degraded_footnote(any_degraded);
}

/// E5 — Equation 1 accuracy: estimated vs measured index leaf pages.
fn e5_size_accuracy() {
    banner(
        "E5  Equation-1 index sizing vs built B-trees",
        "o=24, B=8192, leaf pages only; accurate enough for relative sizes",
    );
    let (mut session, _) = laptop_session(30_000, 3);
    let shapes: Vec<(&str, Vec<&str>)> = vec![
        ("photoobj", vec!["objid"]),
        ("photoobj", vec!["ra"]),
        ("photoobj", vec!["type"]),
        ("photoobj", vec!["run", "camcol", "field"]),
        ("photoobj", vec!["type", "modelmag_r"]),
        ("specobj", vec!["bestobjid"]),
        ("specobj", vec!["z"]),
        ("neighbors", vec!["objid", "distance"]),
    ];
    let mut t = Table::new(&["index", "estimated pages", "measured pages", "error"]);
    for (i, (table, cols)) in shapes.iter().enumerate() {
        let mut overlay = HypotheticalCatalog::new(session.catalog());
        let def = WhatIfIndex::new(format!("w{i}"), *table, cols);
        let id = simulate_index(&mut overlay, &def).expect("simulate");
        let est = overlay.hypo_index(id).unwrap().pages;
        drop(overlay);

        let rid = session
            .catalog_mut()
            .create_index(&format!("m{i}"), table, cols)
            .expect("create");
        let (cat, db) = session.catalog_db_mut();
        db.build_index(cat, rid);
        let measured = session.catalog().index(rid).unwrap().pages;
        let err = (est as f64 - measured as f64) / measured as f64 * 100.0;
        t.row(&[
            format!("{table}({})", cols.join(",")),
            est.to_string(),
            measured.to_string(),
            format!("{err:+.1}%"),
        ]);
    }
    println!("\n{}", t.render());
}

/// E6 — AutoPart improves workload cost under replication constraints and
/// converges (§3.3).
fn e6_autopart() {
    banner(
        "E6  AutoPart partition suggestion vs replication budget",
        "optimal partitions under DBA space constraints; queries rewritten",
    );
    let session = paper_session();
    let wl = workload();
    let base = session.catalog().total_size_bytes();
    let mut t = Table::new(&["replication budget", "fragments", "iterations", "est. speedup", "rewritten queries"]);
    let mut any_degraded = false;
    for frac in [0.0f64, 0.1, 0.25, 0.5] {
        let cfg = AutoPartConfig {
            replication_limit_bytes: (base as f64 * frac) as i64,
            ..Default::default()
        };
        let sugg = session.suggest_partitions(&wl, cfg).expect("autopart");
        let rewritten = wl
            .iter()
            .zip(&sugg.rewritten)
            .filter(|(a, b)| a != b)
            .count();
        any_degraded |= sugg.degraded;
        t.row(&[
            format!("{:.0}%", frac * 100.0),
            format!("{}{}", sugg.partitions.len(), star(sugg.degraded)),
            format!("{}{}", sugg.iterations, star(sugg.degraded)),
            format!("{:.2}x", sugg.report.speedup()),
            format!("{rewritten}/30"),
        ]);
    }
    println!("\n{}", t.render());
    degraded_footnote(any_degraded);
}

/// E7 — scenario 1 verification: what-if estimates vs materialized reality.
fn e7_interactive() {
    banner(
        "E7  interactive what-if accuracy verification",
        "what-if plan matches the materialized plan; simulation verified",
    );
    let (mut session, _) = laptop_session(20_000, 4);
    let probes = [
        ("SELECT ra, dec FROM photoobj WHERE objid = 777", ("photoobj", vec!["objid"])),
        (
            "SELECT objid FROM photoobj WHERE ra BETWEEN 10.0 AND 10.4",
            ("photoobj", vec!["ra"]),
        ),
        (
            "SELECT specobjid FROM specobj WHERE z BETWEEN 0.1 AND 0.11",
            ("specobj", vec!["z"]),
        ),
    ];
    let mut t = Table::new(&[
        "query",
        "what-if cost",
        "real cost",
        "same plan",
        "size error",
    ]);
    for (i, (sql, (table, cols))) in probes.iter().enumerate() {
        let sel = parinda::parse_select(sql).unwrap();
        let def = WhatIfIndex::new(format!("w{i}"), *table, cols);
        let v = verify_whatif_index(&mut session, &sel, &def).expect("verify");
        t.row(&[
            format!("Q{}", i + 1),
            format!("{:.2}", v.whatif_cost),
            format!("{:.2}", v.materialized_cost),
            if v.same_access_path { "yes".into() } else { "NO".into() },
            format!("{:.1}%", v.size_error() * 100.0),
        ]);
    }
    println!("\n{}", t.render());
}

/// E8 — parallel evaluation-engine scaling: the three hot paths (INUM
/// cache build, ILP advising, AutoPart) at 1/2/4/8 threads, with the
/// advisor output checked byte-identical to the single-thread run first.
fn e8_parallel_scaling() {
    banner(
        "E8  parallel evaluation-engine scaling",
        "(engineering addition: identical designs, lower wall-clock on multicore)",
    );
    use parinda::Parallelism;
    use parinda_inum::InumOptions;

    let wl = workload();
    let threads = [1usize, 2, 4, 8];
    println!(
        "machine reports {} available thread(s); PARINDA_THREADS overrides\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Correctness gate before any timing: same design at every count.
    let reference: Vec<String> = {
        let mut s = paper_session();
        s.set_parallelism(Parallelism::fixed(1));
        let sugg = s.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).unwrap();
        sugg.indexes.iter().map(|i| i.name.clone()).collect()
    };

    let mut t = Table::new(&["threads", "inum build", "ilp advising", "autopart", "identical"]);
    let mut base_times: Option<(f64, f64, f64)> = None;
    for &n in &threads {
        let par = Parallelism::fixed(n);
        let mut session = paper_session();
        session.set_parallelism(par);

        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            InumModel::build_par(
                session.catalog(),
                &wl,
                CostParams::default(),
                InumOptions::default(),
                par,
            )
            .unwrap();
        }
        let build = t0.elapsed().as_secs_f64() / reps as f64;

        let t0 = Instant::now();
        let sugg = session.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).unwrap();
        let ilp = t0.elapsed().as_secs_f64();
        let names: Vec<String> = sugg.indexes.iter().map(|i| i.name.clone()).collect();

        let t0 = Instant::now();
        session.suggest_partitions(&wl, AutoPartConfig::default()).unwrap();
        let autopart = t0.elapsed().as_secs_f64();

        let (b0, i0, a0) = *base_times.get_or_insert((build, ilp, autopart));
        t.row(&[
            format!("{n}"),
            format!("{:.1} ms ({:.2}x)", build * 1e3, b0 / build),
            format!("{:.1} ms ({:.2}x)", ilp * 1e3, i0 / ilp),
            format!("{:.2} s ({:.2}x)", autopart, a0 / autopart),
            if names == reference { "yes".into() } else { "NO".into() },
        ]);
        assert_eq!(names, reference, "parallel advising changed the design");
    }
    println!("\n{}", t.render());
}

/// E10 — 100k-statement scaling: template clustering + sparse benefit
/// matrix + warm-started branch-and-bound, end to end on one core.
fn e10_scaling() {
    print!("{}", experiments::e10_report(false));
}

/// A1 — ablation: how much of INUM's accuracy comes from caching multiple
/// interesting-order cases and the nested-loop on/off pair (§3.2/§3.4)?
/// A one-case cache is faster to build but over-estimates configuration
/// costs whenever the optimal plan shape changes with the configuration.
fn a1_inum_ablation() {
    banner(
        "A1  ablation: INUM cache richness vs estimate accuracy",
        "(design-choice ablation; no direct paper table)",
    );
    use parinda_inum::InumOptions;
    let session = paper_session();
    let wl = workload();
    let photo = session.catalog().table_by_name("photoobj").unwrap().id;
    let spec = session.catalog().table_by_name("specobj").unwrap().id;

    let variants: [(&str, InumOptions); 3] = [
        ("full cache (orders × NL pair)", InumOptions::default()),
        (
            "no NL pair",
            InumOptions { join_scenario_pairs: false, ..Default::default() },
        ),
        (
            "single case (no orders, no pair)",
            InumOptions { max_cases_per_query: 1, join_scenario_pairs: false },
        ),
    ];

    let mut t = Table::new(&["variant", "build time", "mean err", "worst err"]);
    for (name, opts) in variants {
        let t0 = Instant::now();
        let mut model =
            InumModel::build_with(session.catalog(), &wl, CostParams::default(), opts).unwrap();
        let build = t0.elapsed();

        let cands: Vec<_> = [
            (photo, vec![0usize]),
            (photo, vec![14]),
            (photo, vec![9]),
            (spec, vec![1]),
            (spec, vec![5]),
        ]
        .into_iter()
        .map(|(tb, cols)| model.register_candidate(CandidateIndex::new(tb, cols)))
        .collect();

        let mut worst = 1.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for mask in 0..32u32 {
            let cfg = Configuration::from_ids(
                cands
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &id)| id),
            );
            for qi in 0..wl.len() {
                let est = model.cost(qi, &cfg);
                let exact = model.exact_cost(qi, &cfg);
                if exact > 0.0 && est.is_finite() {
                    let ratio = (est / exact).max(exact / est);
                    worst = worst.max(ratio);
                    sum += ratio;
                    count += 1;
                }
            }
        }
        t.row(&[
            name.to_string(),
            format!("{build:.2?}"),
            format!("{:.3}x", sum / count as f64),
            format!("{worst:.2}x"),
        ]);
    }
    println!("\n{}", t.render());
}
