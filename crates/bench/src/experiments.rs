//! Library forms of the experiment-harness entries that other code pins
//! down: E1 and E3 as renderable reports with a *deterministic mode*
//! (timing cells become `-` placeholders, advisors run sequentially) so
//! the golden tests can diff them byte-for-byte, and the E3/E4 JSON
//! artifact (`BENCH_e3_e4.json`, schema documented in EXPERIMENTS.md)
//! that embeds the `parinda-trace/v1` run profile.
//!
//! The `experiments` binary delegates its `e1`/`e3` subcommands here so
//! the printed tables and the golden-pinned tables can never drift.

use std::fmt::Write as _;
use std::time::Instant;

use parinda::{
    AutoPartConfig, Design, IlpOptions, Parallelism, SelectionMethod, Trace, WhatIfIndex,
    WhatIfPartition,
};
use parinda_catalog::MetadataProvider;
use parinda_inum::{CandidateIndex, Configuration, InumModel, InumOptions};
use parinda_optimizer::CostParams;
use parinda_parallel::Budget;

use crate::{paper_session, workload, Table};

/// Render a duration cell, or the deterministic placeholder.
fn time_cell(deterministic: bool, d: std::time::Duration) -> String {
    if deterministic {
        "-".into()
    } else {
        format!("{d:.2?}")
    }
}

/// Render a microseconds cell, or the deterministic placeholder.
fn us_cell(deterministic: bool, us: f64) -> String {
    if deterministic {
        "-".into()
    } else {
        format!("{us:.2} µs")
    }
}

/// The experiment banner, shared with the binary.
pub fn banner(id: &str, claim: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n=========================================================================="
    );
    let _ = writeln!(out, "{id}");
    let _ = writeln!(out, "paper claim: {claim}");
    let _ = writeln!(
        out,
        "=========================================================================="
    );
    out
}

fn star(degraded: bool) -> &'static str {
    if degraded {
        "*"
    } else {
        ""
    }
}

/// E1, estimated section — "speedups ranging from 2x to 10x" (§1).
/// Advisor output is deterministic at any thread count, so this table
/// contains no timings and is golden-stable as is. In deterministic
/// mode the sessions are pinned to one thread anyway, for belt and
/// braces.
pub fn e1_report(deterministic: bool) -> String {
    let mut out = banner("E1  workload speedup from suggested design features", "2x to 10x");
    let mut session = paper_session();
    if deterministic {
        session.set_parallelism(Parallelism::fixed(1));
    }
    let wl = workload();
    let base_bytes = session.catalog().total_size_bytes();
    let mut t = Table::new(&["budget (frac of db)", "indexes", "partitions", "est. speedup"]);
    let mut any_degraded = false;
    for frac in [0.05f64, 0.1, 0.2, 0.4] {
        let budget = (base_bytes as f64 * frac) as u64;
        let idx = session.suggest_indexes(&wl, budget, SelectionMethod::Ilp).expect("advisor");
        let parts =
            session.suggest_partitions(&wl, AutoPartConfig::default()).expect("autopart");
        let mut design = Design::new();
        for p in &parts.partitions {
            let cols: Vec<&str> = p.columns.iter().map(|s| s.as_str()).collect();
            design = design.with_partition(WhatIfPartition::new(&p.name, &p.table, &cols));
        }
        for i in &idx.indexes {
            let cols: Vec<&str> = i.columns.iter().map(|s| s.as_str()).collect();
            design = design.with_index(WhatIfIndex::new(&i.name, &i.table, &cols));
        }
        let (report, _) = session.evaluate_design(&wl, &design).expect("evaluation");
        any_degraded |= idx.degraded || parts.degraded;
        t.row(&[
            format!("{:.0}%", frac * 100.0),
            format!("{}{}", idx.indexes.len(), star(idx.degraded)),
            format!("{}{}", parts.partitions.len(), star(parts.degraded)),
            format!("{:.2}x", report.speedup()),
        ]);
    }
    let _ = writeln!(
        out,
        "\nestimated (optimizer cost, paper-scale statistics):\n{}",
        t.render()
    );
    if any_degraded {
        let _ = writeln!(
            out,
            "  * budget-degraded: best-so-far under the advisor budget, not the full search"
        );
    }
    out
}

/// Measurements behind E3: cache-build time and per-estimate times for
/// the INUM cached model vs full re-optimization, plus the counter
/// totals the traced run recorded.
pub struct E3Run {
    pub build: std::time::Duration,
    pub per_cached_us: f64,
    pub per_full_us: f64,
    pub n_cached: usize,
    pub n_full: usize,
    /// The `parinda-trace/v1` report for the whole run (sequential, so
    /// every counter in it is deterministic).
    pub report: parinda::TraceReport,
}

/// Run E3's measurement loop once, with tracing on.
pub fn e3_run() -> E3Run {
    let session = paper_session();
    let wl = workload();
    let trace = Trace::recording();

    let t0 = Instant::now();
    let mut model = {
        let _s = trace.span("inum_build");
        InumModel::build_budgeted_traced(
            session.catalog(),
            &wl,
            CostParams::default(),
            InumOptions::default(),
            Parallelism::fixed(1),
            &Budget::unlimited(),
            trace.clone(),
        )
        .expect("inum build")
    };
    let build = t0.elapsed();

    let photo = session.catalog().table_by_name("photoobj").unwrap().id;
    let spec = session.catalog().table_by_name("specobj").unwrap().id;
    let cands: Vec<_> = [
        (photo, vec![0]),
        (photo, vec![14]),
        (photo, vec![9]),
        (photo, vec![27]),
        (spec, vec![1]),
        (spec, vec![5]),
    ]
    .into_iter()
    .map(|(t, c)| model.register_candidate(CandidateIndex::new(t, c)))
    .collect();
    let configs: Vec<Configuration> = (0..64u32)
        .map(|mask| {
            Configuration::from_ids(
                cands
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &id)| id),
            )
        })
        .collect();
    for cfg in &configs {
        model.workload_cost(cfg); // warm memoization
    }

    const N_CACHED: usize = 100_000;
    let t0 = Instant::now();
    let mut guard = 0.0f64;
    for i in 0..N_CACHED {
        let cfg = &configs[i % configs.len()];
        guard += model.cost(i % wl.len(), cfg);
    }
    let cached = t0.elapsed();
    assert!(guard.is_finite());

    const N_FULL: usize = 200;
    let t0 = Instant::now();
    for i in 0..N_FULL {
        let cfg = &configs[i % configs.len()];
        model.exact_cost(i % wl.len(), cfg);
    }
    let full = t0.elapsed();

    E3Run {
        build,
        per_cached_us: cached.as_secs_f64() / N_CACHED as f64 * 1e6,
        per_full_us: full.as_secs_f64() / N_FULL as f64 * 1e6,
        n_cached: N_CACHED,
        n_full: N_FULL,
        report: trace.snapshot(),
    }
}

/// E3 — INUM estimates "costs of millions of physical designs in the
/// order of minutes instead of days" (§3.4). In deterministic mode every
/// timing-derived cell renders `-`; the pipeline counters (optimizer
/// invocations, cache hits/misses) are scheduling-independent under the
/// sequential run and stay pinned.
pub fn e3_report(deterministic: bool) -> String {
    let mut out = banner(
        "E3  INUM cached cost model vs full re-optimization",
        "millions of estimations in minutes instead of days",
    );
    let run = e3_run();
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["cache build (30 queries)".into(), time_cell(deterministic, run.build)]);
    t.row(&["per-estimate, INUM cached".into(), us_cell(deterministic, run.per_cached_us)]);
    t.row(&["per-estimate, full optimizer".into(), us_cell(deterministic, run.per_full_us)]);
    t.row(&[
        "speedup per estimate".into(),
        if deterministic {
            "-".into()
        } else {
            format!("{:.0}x", run.per_full_us / run.per_cached_us)
        },
    ]);
    t.row(&[
        "1M estimations, INUM".into(),
        if deterministic { "-".into() } else { format!("{:.1} s", run.per_cached_us) },
    ]);
    t.row(&[
        "1M estimations, full optimizer".into(),
        if deterministic { "-".into() } else { format!("{:.1} min", run.per_full_us / 60.0) },
    ]);
    let _ = writeln!(out, "\n{}", t.render());

    use parinda::Counter;
    let mut c = Table::new(&["pipeline counter", "total"]);
    for counter in [
        Counter::OptimizerInvocations,
        Counter::InumCacheHits,
        Counter::InumCacheMisses,
    ] {
        c.row(&[counter.name().into(), run.report.counter(counter).to_string()]);
    }
    let _ = writeln!(out, "traced counters (sequential run, deterministic):\n{}", c.render());
    out
}

/// One E4 measurement row: ILP vs greedy at a storage budget.
pub struct E4Row {
    pub budget_mb: u64,
    pub ilp_seconds: f64,
    pub greedy_seconds: f64,
    pub ilp_indexes: usize,
    pub greedy_indexes: usize,
    pub proven_optimal: bool,
}

/// Run the E4 budget sweep with tracing on; returns the rows and the
/// aggregated trace report.
pub fn e4_run() -> (Vec<E4Row>, parinda::TraceReport) {
    let mut session = paper_session();
    session.set_parallelism(Parallelism::fixed(1));
    let trace = Trace::recording();
    session.set_trace(trace.clone());
    let wl = workload();
    let mut rows = Vec::new();
    for mb in [400u64, 1200, 2120] {
        let budget = mb << 20;
        let t0 = Instant::now();
        let ilp = session.suggest_indexes(&wl, budget, SelectionMethod::Ilp).expect("ilp");
        let ilp_seconds = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let greedy =
            session.suggest_indexes(&wl, budget, SelectionMethod::Greedy).expect("greedy");
        let greedy_seconds = t0.elapsed().as_secs_f64();
        rows.push(E4Row {
            budget_mb: mb,
            ilp_seconds,
            greedy_seconds,
            ilp_indexes: ilp.indexes.len(),
            greedy_indexes: greedy.indexes.len(),
            proven_optimal: ilp.proven_optimal,
        });
    }
    (rows, trace.snapshot())
}

/// Minimal JSON string escaper (mirrors the one in `parinda-trace`).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Measurements behind E10: the 100k-statement scaling path — template
/// clustering, weighted INUM over the templates, the sparse benefit
/// matrix, and the warm-started branch-and-bound — end to end on one
/// core, plus a warm-start-off rerun for the node-count comparison.
pub struct E10Run {
    /// Raw statements in the generated stream.
    pub statements: usize,
    /// Templates surviving clustering.
    pub templates: usize,
    /// Statements that folded into an already-seen template.
    pub templates_merged: u64,
    /// `statements / templates`.
    pub compression_ratio: f64,
    /// Wall-clock of the whole advised run (cluster + INUM + ILP), one
    /// core.
    pub advise_seconds: f64,
    /// Materialized benefit-matrix nonzeros.
    pub matrix_nnz: u64,
    /// `templates × scored candidates` — what the dense matrix held.
    pub dense_cells: u64,
    /// Branch-and-bound nodes with the greedy incumbent seeded.
    pub solver_nodes_warm: u64,
    /// Branch-and-bound nodes with warm start disabled.
    pub solver_nodes_cold: u64,
    /// Nodes pruned against the incumbent in the warm run.
    pub pruned_by_incumbent: u64,
    /// Suggested indexes (identical in both runs — warm start never
    /// changes the design).
    pub indexes: usize,
    pub proven_optimal: bool,
    /// The `parinda-trace/v1` report of the warm (primary) run.
    pub report: parinda::TraceReport,
}

/// Run E10 once: a 100k-statement SDSS stream (seed 42), advised at
/// paper scale on one core, with and without the solver warm start.
pub fn e10_run() -> E10Run {
    e10_run_sized(100_000)
}

/// [`e10_run`] at an explicit stream size (the smoke tests use a smaller
/// stream; the artifact uses the full 100k).
pub fn e10_run_sized(statements: usize) -> E10Run {
    use parinda::Counter;
    let stream = parinda_workload::generate_sdss_stream(statements, 42);
    let mut session = paper_session();
    session.set_parallelism(Parallelism::fixed(1));
    let budget_bytes = session.catalog().total_size_bytes() / 5;

    let warm_trace = Trace::recording();
    session.set_trace(warm_trace.clone());
    let t0 = Instant::now();
    let (warm, compressed) = session
        .suggest_indexes_compressed(
            &stream,
            budget_bytes,
            SelectionMethod::Ilp,
            &IlpOptions::default(),
        )
        .expect("e10 advise (warm)");
    let advise_seconds = t0.elapsed().as_secs_f64();
    let warm_report = warm_trace.snapshot();

    let cold_trace = Trace::recording();
    session.set_trace(cold_trace.clone());
    let (cold, _) = session
        .suggest_indexes_compressed(
            &stream,
            budget_bytes,
            SelectionMethod::Ilp,
            &IlpOptions { warm_start: false, ..Default::default() },
        )
        .expect("e10 advise (cold)");
    let cold_report = cold_trace.snapshot();

    // The warm start only changes the work to prove the optimum, never
    // the optimum itself.
    let names = |s: &parinda::IndexSuggestion| -> Vec<String> {
        s.indexes.iter().map(|i| i.name.clone()).collect()
    };
    assert_eq!(names(&warm), names(&cold), "warm start changed the selected design");

    E10Run {
        statements,
        templates: compressed.len(),
        templates_merged: warm_report.counter(Counter::TemplatesMerged),
        compression_ratio: compressed.compression_ratio(),
        advise_seconds,
        matrix_nnz: warm_report.counter(Counter::MatrixNnz),
        dense_cells: compressed.len() as u64
            * warm_report.counter(Counter::CandidatesEvaluated),
        solver_nodes_warm: warm_report.counter(Counter::SolverNodes),
        solver_nodes_cold: cold_report.counter(Counter::SolverNodes),
        pruned_by_incumbent: warm_report.counter(Counter::BnbPrunedByIncumbent),
        indexes: warm.indexes.len(),
        proven_optimal: warm.proven_optimal,
        report: warm_report,
    }
}

/// E10 — scale: 100k statements advised within an interactive budget on
/// one core. In deterministic mode the timing cell renders `-`; every
/// other cell is a deterministic count.
pub fn e10_report(deterministic: bool) -> String {
    let mut out = banner(
        "E10  100k-statement workload: clustering + sparse ILP + warm start",
        "(scaling addition: interactive advising at production workload sizes)",
    );
    let run = e10_run();
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["statements".into(), run.statements.to_string()]);
    t.row(&[
        "templates after clustering".into(),
        format!("{} ({:.0}x compression)", run.templates, run.compression_ratio),
    ]);
    t.row(&["benefit matrix nnz / dense".into(), {
        let pct = run.matrix_nnz as f64 / run.dense_cells.max(1) as f64 * 100.0;
        format!("{} / {} ({pct:.1}%)", run.matrix_nnz, run.dense_cells)
    }]);
    t.row(&[
        "B&B nodes warm / cold".into(),
        format!("{} / {}", run.solver_nodes_warm, run.solver_nodes_cold),
    ]);
    t.row(&["nodes pruned by incumbent".into(), run.pruned_by_incumbent.to_string()]);
    t.row(&["suggested indexes".into(), run.indexes.to_string()]);
    t.row(&[
        "proven optimal".into(),
        if run.proven_optimal { "yes".into() } else { "no".into() },
    ]);
    t.row(&[
        "end-to-end advise (1 core)".into(),
        if deterministic { "-".into() } else { format!("{:.2} s", run.advise_seconds) },
    ]);
    let _ = writeln!(out, "\n{}", t.render());
    out
}

/// Build the `BENCH_e3_e4.json` artifact: E3 + E4 timings, the
/// deterministic counter totals, and the embedded `parinda-trace/v1`
/// profile of the whole measurement run. Schema: `parinda-bench/e3e4/v1`
/// (documented in EXPERIMENTS.md).
pub fn e3_e4_json() -> String {
    let e3 = e3_run();
    let (e4_rows, e4_report) = e4_run();
    let mut combined = e3.report.clone();
    combined.merge(&e4_report);

    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"parinda-bench/e3e4/v1\",\n");
    let _ = write!(
        out,
        "  \"e3\": {{\n    \"build_seconds\": {:.6},\n    \"per_estimate_inum_us\": {:.4},\n    \"per_estimate_full_us\": {:.4},\n    \"cached_estimates\": {},\n    \"full_optimizations\": {}\n  }},\n",
        e3.build.as_secs_f64(),
        e3.per_cached_us,
        e3.per_full_us,
        e3.n_cached,
        e3.n_full
    );
    out.push_str("  \"e4\": [\n");
    for (i, r) in e4_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"budget_mb\": {}, \"ilp_seconds\": {:.6}, \"greedy_seconds\": {:.6}, \"ilp_indexes\": {}, \"greedy_indexes\": {}, \"proven_optimal\": {}}}{}\n",
            r.budget_mb,
            r.ilp_seconds,
            r.greedy_seconds,
            r.ilp_indexes,
            r.greedy_indexes,
            r.proven_optimal,
            if i + 1 < e4_rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"counters\": {\n");
    let n = combined.counters.len();
    for (i, (name, v)) in combined.counters.iter().enumerate() {
        let _ = write!(
            out,
            "    \"{}\": {}{}\n",
            json_escape(name),
            v,
            if i + 1 < n { "," } else { "" }
        );
    }
    out.push_str("  },\n");
    // embed the full profile, indented under "trace"
    let profile = combined.to_json();
    let indented: String = profile
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 0 { format!("  \"trace\": {l}\n") } else { format!("  {l}\n") })
        .collect();
    out.push_str(indented.trim_end_matches('\n'));
    out.push_str("\n}\n");
    out
}

/// Build the `BENCH_e10.json` artifact: the 100k-statement scaling run
/// with the counter totals and the embedded `parinda-trace/v1` profile.
/// Schema: `parinda-bench/e10/v1` (documented in EXPERIMENTS.md).
pub fn e10_json() -> String {
    let r = e10_run();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"parinda-bench/e10/v1\",\n");
    let _ = write!(
        out,
        "  \"statements\": {},\n  \"templates\": {},\n  \"templates_merged\": {},\n  \"compression_ratio\": {:.4},\n  \"advise_seconds\": {:.6},\n  \"matrix_nnz\": {},\n  \"dense_cells\": {},\n  \"nnz_fraction\": {:.6},\n  \"solver_nodes_warm\": {},\n  \"solver_nodes_cold\": {},\n  \"bnb_pruned_by_incumbent\": {},\n  \"indexes\": {},\n  \"proven_optimal\": {},\n",
        r.statements,
        r.templates,
        r.templates_merged,
        r.compression_ratio,
        r.advise_seconds,
        r.matrix_nnz,
        r.dense_cells,
        r.matrix_nnz as f64 / r.dense_cells.max(1) as f64,
        r.solver_nodes_warm,
        r.solver_nodes_cold,
        r.pruned_by_incumbent,
        r.indexes,
        r.proven_optimal,
    );
    out.push_str("  \"counters\": {\n");
    let n = r.report.counters.len();
    for (i, (name, v)) in r.report.counters.iter().enumerate() {
        let _ = write!(
            out,
            "    \"{}\": {}{}\n",
            json_escape(name),
            v,
            if i + 1 < n { "," } else { "" }
        );
    }
    out.push_str("  },\n");
    let profile = r.report.to_json();
    let indented: String = profile
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 0 { format!("  \"trace\": {l}\n") } else { format!("  {l}\n") })
        .collect();
    out.push_str(indented.trim_end_matches('\n'));
    out.push_str("\n}\n");
    out
}

/// One machine-readable experiment artifact.
pub struct JsonBench {
    /// Subcommand name (`experiments json <name>`).
    pub name: &'static str,
    /// Default artifact filename.
    pub artifact: &'static str,
    /// Generator producing the artifact's JSON text.
    pub generate: fn() -> String,
}

/// Every experiment with a machine-readable artifact. The binary's
/// `json` subcommand walks this registry — a new bench slots in here
/// without another special case.
pub const JSON_BENCHES: &[JsonBench] = &[
    JsonBench { name: "e3e4", artifact: "BENCH_e3_e4.json", generate: e3_e4_json },
    JsonBench { name: "e10", artifact: "BENCH_e10.json", generate: e10_json },
];
