//! E3 — INUM cached configuration costing vs full re-optimization (paper
//! §3.4: "costs of millions of physical designs in the order of minutes
//! instead of days").

use criterion::{criterion_group, criterion_main, Criterion};
use parinda_bench::{paper_session, workload};
use parinda_catalog::MetadataProvider;
use parinda_inum::{CandidateIndex, Configuration, InumModel};
use parinda_optimizer::CostParams;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_inum_speedup");
    group.sample_size(20);

    let session = paper_session();
    let wl = workload();
    let mut model = InumModel::build(session.catalog(), &wl, CostParams::default()).unwrap();

    let photo = session.catalog().table_by_name("photoobj").unwrap().id;
    let spec = session.catalog().table_by_name("specobj").unwrap().id;
    let ids: Vec<_> = [
        (photo, vec![0usize]),
        (photo, vec![14]),
        (photo, vec![9]),
        (spec, vec![1]),
        (spec, vec![5]),
    ]
    .into_iter()
    .map(|(t, cols)| model.register_candidate(CandidateIndex::new(t, cols)))
    .collect();
    let configs: Vec<Configuration> = (0..32u32)
        .map(|mask| {
            Configuration::from_ids(
                ids.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &id)| id),
            )
        })
        .collect();
    // warm memos so the bench measures steady-state cache service
    for cfg in &configs {
        model.workload_cost(cfg);
    }

    let mut i = 0usize;
    group.bench_function("inum_cached_estimate", |b| {
        b.iter(|| {
            i = (i + 1) % (configs.len() * wl.len());
            model.cost(i % wl.len(), &configs[i % configs.len()])
        })
    });

    let mut j = 0usize;
    group.bench_function("full_reoptimization", |b| {
        b.iter(|| {
            j = (j + 1) % (configs.len() * wl.len());
            model.exact_cost(j % wl.len(), &configs[j % configs.len()])
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
