//! E1 — workload execution time before vs after the suggested physical
//! design (paper §1: "speedups ranging from 2x to 10x").
//!
//! Measures *real execution* of the 30-query SDSS workload on the
//! laptop-scale instance: once on the bare design, once with AutoPart
//! partitions + ILP-selected indexes materialized.

use criterion::{criterion_group, criterion_main, Criterion};
use parinda::{AutoPartConfig, SelectionMethod};
use parinda_bench::{execute_workload, laptop_session, workload};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_workload_speedup");
    group.sample_size(10);

    // Baseline design.
    let (base_session, _) = laptop_session(20_000, 1);
    let wl = workload();
    group.bench_function("before_suggestions", |b| {
        b.iter(|| execute_workload(&base_session, &wl))
    });

    // Suggested design: partitions + indexes, materialized.
    let (mut tuned, _) = laptop_session(20_000, 1);
    let parts = tuned
        .suggest_partitions(&wl, AutoPartConfig::default())
        .expect("autopart");
    tuned.materialize_partitions(&parts).expect("partition build");
    let budget = tuned.catalog().total_size_bytes() / 5;
    let idx = tuned.suggest_indexes(&wl, budget, SelectionMethod::Ilp).expect("advisor");
    tuned.materialize_indexes(&idx).expect("index build");
    let rewritten = parts.rewritten.clone();
    group.bench_function("after_suggestions", |b| {
        b.iter(|| execute_workload(&tuned, &rewritten))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
