//! E9 — observability overhead: the trace layer must be free when
//! disabled (<2% on the hottest path, the INUM cached estimator whose
//! per-call work is a handful of arithmetic ops) and cheap when
//! recording. Three variants of the same 100k-estimate loop:
//!
//! * `disabled`  — `Trace::disabled()`: one branch per counter site.
//! * `recording` — a live `Sink` aggregating spans and counters.
//! * plus the full ILP advisor run, traced vs untraced.

use criterion::{criterion_group, criterion_main, Criterion};
use parinda::{SelectionMethod, Trace};
use parinda_bench::{paper_session, workload};
use parinda_catalog::MetadataProvider;
use parinda_inum::{CandidateIndex, Configuration, InumModel, InumOptions};
use parinda_optimizer::CostParams;
use parinda_parallel::{Budget, Parallelism};

fn traced_model(
    session: &parinda::Parinda,
    trace: Trace,
) -> (InumModel<'_>, Vec<Configuration>, usize) {
    let wl = workload();
    let mut model = InumModel::build_budgeted_traced(
        session.catalog(),
        &wl,
        CostParams::default(),
        InumOptions::default(),
        Parallelism::fixed(1),
        &Budget::unlimited(),
        trace,
    )
    .expect("inum build");
    let photo = session.catalog().table_by_name("photoobj").unwrap().id;
    let spec = session.catalog().table_by_name("specobj").unwrap().id;
    let cands: Vec<_> = [(photo, vec![0]), (photo, vec![14]), (spec, vec![1]), (spec, vec![5])]
        .into_iter()
        .map(|(t, c)| model.register_candidate(CandidateIndex::new(t, c)))
        .collect();
    let configs: Vec<Configuration> = (0..16u32)
        .map(|mask| {
            Configuration::from_ids(
                cands
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &id)| id),
            )
        })
        .collect();
    for cfg in &configs {
        model.workload_cost(cfg); // warm memoization
    }
    (model, configs, wl.len())
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_trace_overhead");

    // Hot path: 100k cached estimates. The disabled and recording
    // variants must be within noise of each other for the "<2% when
    // disabled" contract (the estimator itself is the baseline; the
    // disabled trace adds one branch per memo access).
    let session = paper_session();
    for (label, trace) in
        [("estimates_100k_disabled", Trace::disabled()), ("estimates_100k_recording", Trace::recording())]
    {
        let (model, configs, nq) = traced_model(&session, trace);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for i in 0..100_000usize {
                    acc += model.cost(i % nq, &configs[i % configs.len()]);
                }
                acc
            })
        });
    }

    // Whole-pipeline check: the ILP advisor end to end, untraced vs
    // traced (spans around every phase, counters in every sweep).
    group.sample_size(10);
    for (label, trace) in
        [("ilp_advisor_disabled", Trace::disabled()), ("ilp_advisor_recording", Trace::recording())]
    {
        let mut session = paper_session();
        session.set_parallelism(Parallelism::fixed(1));
        session.set_trace(trace);
        let wl = workload();
        group.bench_function(label, |b| {
            b.iter(|| session.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
