//! E7 — interactive what-if evaluation latency: the responsiveness that
//! makes the tool "interactive" (paper §1: the DBA explores "a larger
//! solution space interactively").

use criterion::{criterion_group, criterion_main, Criterion};
use parinda::{Design, WhatIfIndex, WhatIfPartition};
use parinda_bench::{paper_session, workload};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_interactive");
    group.sample_size(10);

    let session = paper_session();
    let wl = workload();

    let index_design = Design::new()
        .with_index(WhatIfIndex::new("w_objid", "photoobj", &["objid"]))
        .with_index(WhatIfIndex::new("w_best", "specobj", &["bestobjid"]));
    group.bench_function("evaluate_two_indexes_30q", |b| {
        b.iter(|| session.evaluate_design(&wl, &index_design).unwrap())
    });

    let mixed_design = Design::new()
        .with_index(WhatIfIndex::new("w_objid", "photoobj", &["objid"]))
        .with_partition(WhatIfPartition::new(
            "photoobj_astro",
            "photoobj",
            &["ra", "dec", "type", "modelmag_r", "modelmag_g"],
        ));
    group.bench_function("evaluate_index_plus_partition_30q", |b| {
        b.iter(|| session.evaluate_design(&wl, &mixed_design).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
