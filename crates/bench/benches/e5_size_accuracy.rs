//! E5 — Equation-1 sizing throughput (accuracy is reported by the
//! `experiments e5` table; here we show that what-if sizing is effectively
//! free compared to any physical operation).

use criterion::{criterion_group, criterion_main, Criterion};
use parinda_bench::paper_session;
use parinda_catalog::layout::index_leaf_pages;
use parinda_catalog::MetadataProvider;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_size_accuracy");

    let session = paper_session();
    let photo = session.catalog().table_by_name("photoobj").unwrap().clone();
    let narrow = vec![photo.columns[0].clone()];
    let wide: Vec<_> = photo.columns[..8].to_vec();

    group.bench_function("equation1_single_column", |b| {
        b.iter(|| index_leaf_pages(photo.row_count, &narrow))
    });
    group.bench_function("equation1_eight_columns", |b| {
        b.iter(|| index_leaf_pages(photo.row_count, &wide))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
