//! E2 — simulating a design feature vs physically building it (paper §1:
//! "simulating the structures makes the operations orders of magnitude
//! faster").

use criterion::{criterion_group, criterion_main, Criterion};
use parinda::WhatIfIndex;
use parinda_bench::laptop_session;
use parinda_whatif::{simulate_index, HypotheticalCatalog};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_whatif_vs_materialize");
    group.sample_size(10);

    let (session, _) = laptop_session(20_000, 2);
    let def = WhatIfIndex::new("w_modelmag_r", "photoobj", &["modelmag_r"]);

    group.bench_function("simulate_index", |b| {
        b.iter(|| {
            let mut overlay = HypotheticalCatalog::new(session.catalog());
            simulate_index(&mut overlay, &def).expect("simulate")
        })
    });

    group.bench_function("build_index", |b| {
        b.iter_batched(
            || laptop_session(20_000, 2).0,
            |mut s| {
                let id = s
                    .catalog_mut()
                    .create_index("b_modelmag_r", "photoobj", &["modelmag_r"])
                    .expect("create");
                let (cat, db) = s.catalog_db_mut();
                db.build_index(cat, id)
            },
            criterion::BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
