//! E8 — parallel evaluation-engine scaling: wall-clock of the three hot
//! paths (INUM cache build, ILP advising, AutoPart) at 1, 2, 4, and 8
//! threads. The answers are asserted byte-identical to the single-thread
//! run before anything is timed — scaling that changes the design would be
//! a bug, not a speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parinda::{AutoPartConfig, Parallelism, SelectionMethod};
use parinda_bench::{paper_session, workload};
use parinda_inum::{InumModel, InumOptions};
use parinda_optimizer::CostParams;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn suggestion_fingerprint(
    session: &parinda::Parinda,
    wl: &[parinda::Select],
) -> (Vec<String>, Vec<u64>) {
    let sugg = session
        .suggest_indexes(wl, 2_u64 << 30, SelectionMethod::Ilp)
        .expect("advising must succeed");
    (
        sugg.indexes.iter().map(|i| i.name.clone()).collect(),
        sugg.report.per_query.iter().map(|q| q.cost_after.to_bits()).collect(),
    )
}

fn bench(c: &mut Criterion) {
    let wl = workload();

    // Correctness gate: identical designs at every thread count.
    let mut baseline = None;
    for threads in THREADS {
        let mut session = paper_session();
        session.set_parallelism(Parallelism::fixed(threads));
        let fp = suggestion_fingerprint(&session, &wl);
        match &baseline {
            None => baseline = Some(fp),
            Some(b) => assert_eq!(b, &fp, "design changed at {threads} threads"),
        }
    }

    let session = paper_session();

    let mut group = c.benchmark_group("e8_inum_build");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                InumModel::build_par(
                    session.catalog(),
                    &wl,
                    CostParams::default(),
                    InumOptions::default(),
                    Parallelism::fixed(t),
                )
                .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e8_ilp_advising");
    group.sample_size(10);
    for threads in THREADS {
        let mut s = paper_session();
        s.set_parallelism(Parallelism::fixed(threads));
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| s.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e8_autopart");
    group.sample_size(10);
    for threads in THREADS {
        let mut s = paper_session();
        s.set_parallelism(Parallelism::fixed(threads));
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| s.suggest_partitions(&wl, AutoPartConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
