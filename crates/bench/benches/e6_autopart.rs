//! E6 — AutoPart end-to-end runtime on the 30-query SDSS workload (the
//! suggestion quality table comes from `experiments e6`).

use criterion::{criterion_group, criterion_main, Criterion};
use parinda::AutoPartConfig;
use parinda_bench::{paper_session, workload};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_autopart");
    group.sample_size(10);

    let session = paper_session();
    let wl = workload();

    group.bench_function("suggest_partitions_sdss30", |b| {
        b.iter(|| session.suggest_partitions(&wl, AutoPartConfig::default()).unwrap())
    });

    // narrower input: only the photo-only selections (faster convergence)
    let narrow: Vec<_> = wl[..10].to_vec();
    group.bench_function("suggest_partitions_sdss10", |b| {
        b.iter(|| session.suggest_partitions(&narrow, AutoPartConfig::default()).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
