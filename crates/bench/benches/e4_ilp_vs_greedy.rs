//! E4 — ILP vs greedy selection runtime as workload size grows (quality is
//! reported by the `experiments e4` table; here we measure the search
//! itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parinda::SelectionMethod;
use parinda_bench::paper_session;
use parinda_workload::generate_queries;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_ilp_vs_greedy");
    group.sample_size(10);

    let session = paper_session();
    let budget = session.catalog().total_size_bytes() / 10;

    for n in [5usize, 15, 30] {
        let wl = generate_queries(n, 42);
        group.bench_with_input(BenchmarkId::new("ilp", n), &wl, |b, wl| {
            b.iter(|| session.suggest_indexes(wl, budget, SelectionMethod::Ilp).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &wl, |b, wl| {
            b.iter(|| session.suggest_indexes(wl, budget, SelectionMethod::Greedy).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
