//! The five repo-specific rules.
//!
//! Three are per-file token rules ([`check_file`]): `panic-site`,
//! `nondeterminism`, `lock-discipline`. Two are cross-file:
//! `failpoint-coverage` ([`check_failpoints`]) reconciles the site
//! registry in `crates/failpoint` against the call sites, the failpoint
//! test, and the README site table; `trace-coverage`
//! ([`check_trace_coverage`]) reconciles the pipeline-phase marker in
//! DESIGN.md against the `.span("…")` call sites, so the observability
//! layer cannot silently lose a phase the docs promise is traced.
//!
//! All per-file rules skip tokens inside test scope (see
//! [`crate::scope`]) — tests may unwrap, time, and iterate hash maps
//! freely; the contracts protect the production paths.

use crate::findings::Finding;
use crate::lexer::{Tok, TokKind};

/// Which per-file rules apply to a given file (decided by the engine
/// from the file's workspace-relative path).
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// `panic-site`: console-reachable crates only.
    pub panic_site: bool,
    /// `nondeterminism` hash-iteration check: advisor / inum / solver.
    pub nondet_iter: bool,
    /// `nondeterminism` wall-clock + thread-id checks: everywhere
    /// except `crates/parallel/src/budget.rs`,
    /// `crates/trace/src/clock.rs`, and the bench crate.
    pub nondet_wallclock: bool,
    /// `lock-discipline`: everywhere.
    pub lock_discipline: bool,
}

impl RuleSet {
    /// All rules on — fixture files run with this.
    pub fn all() -> Self {
        RuleSet { panic_site: true, nondet_iter: true, nondet_wallclock: true, lock_discipline: true }
    }
}

/// A lexed file plus its test-scope mask.
pub struct FileInput<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Token stream from [`crate::lexer::lex`].
    pub toks: &'a [Tok<'a>],
    /// Per-token test-scope flags from [`crate::scope::test_scope_mask`].
    pub in_test: &'a [bool],
}

/// Run the applicable per-file rules. Suppressions are NOT applied
/// here — the engine does that so malformed `allow`s are reported even
/// for files with no findings.
pub fn check_file(input: &FileInput<'_>, rules: &RuleSet) -> Vec<Finding> {
    // Significant (non-trivia) token indices: rules match over these so
    // a comment between `.` and `unwrap` cannot split a pattern.
    let sig: Vec<usize> =
        (0..input.toks.len()).filter(|&i| !input.toks[i].is_trivia()).collect();
    let mut out = Vec::new();
    if rules.panic_site {
        panic_site(input, &sig, &mut out);
    }
    if rules.nondet_iter || rules.nondet_wallclock {
        nondeterminism(input, &sig, rules, &mut out);
    }
    if rules.lock_discipline {
        lock_discipline(input, &sig, &mut out);
    }
    out
}

// Shorthand: the k-th significant token.
macro_rules! tok {
    ($input:expr, $sig:expr, $k:expr) => {
        &$input.toks[$sig[$k]]
    };
}

fn in_test(input: &FileInput<'_>, sig: &[usize], k: usize) -> bool {
    input.in_test[sig[k]]
}

fn finding(input: &FileInput<'_>, line: u32, rule: &'static str, message: String) -> Finding {
    Finding { file: input.rel.to_string(), line, rule, message }
}

// ---------------------------------------------------------------- panic-site

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_site(input: &FileInput<'_>, sig: &[usize], out: &mut Vec<Finding>) {
    for k in 0..sig.len() {
        if in_test(input, sig, k) {
            continue;
        }
        let t = tok!(input, sig, k);
        // panic! / unreachable! / todo! / unimplemented!
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text)
            && matches(input, sig, k + 1, &["!"])
        {
            out.push(finding(
                input,
                t.line,
                "panic-site",
                format!(
                    "`{}!` on a console-reachable path — return a typed ParindaError (never-crash contract, DESIGN.md)",
                    t.text
                ),
            ));
            continue;
        }
        // .unwrap()
        if t.is_punct('.') && matches(input, sig, k + 1, &["unwrap", "(", ")"]) {
            out.push(finding(
                input,
                tok!(input, sig, k + 1).line,
                "panic-site",
                "`.unwrap()` on a console-reachable path — use `?` with a typed ParindaError".into(),
            ));
            continue;
        }
        // .expect(…) — but NOT the SQL parser's `self.expect(TokenKind…)`:
        // a `self.expect(` whose first argument is not a string literal
        // is the parser combinator, not Option/Result::expect.
        if t.is_punct('.') && matches(input, sig, k + 1, &["expect", "("]) {
            let receiver_is_self = k > 0 && tok!(input, sig, k - 1).is_ident("self");
            let arg_is_str = sig
                .get(k + 3)
                .map(|&i| matches!(input.toks[i].kind, TokKind::Str | TokKind::RawStr))
                .unwrap_or(false);
            if receiver_is_self && !arg_is_str {
                continue;
            }
            out.push(finding(
                input,
                tok!(input, sig, k + 1).line,
                "panic-site",
                "`.expect(…)` on a console-reachable path — use `?` with a typed ParindaError".into(),
            ));
        }
    }
}

// ------------------------------------------------------------ nondeterminism

/// Methods that observe a hash container's (arbitrary) iteration order.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_values", "into_keys",
    "drain", "retain",
];

fn nondeterminism(input: &FileInput<'_>, sig: &[usize], rules: &RuleSet, out: &mut Vec<Finding>) {
    if rules.nondet_wallclock {
        wallclock_and_thread_id(input, sig, out);
    }
    if rules.nondet_iter {
        hash_iteration(input, sig, out);
    }
}

fn wallclock_and_thread_id(input: &FileInput<'_>, sig: &[usize], out: &mut Vec<Finding>) {
    for k in 0..sig.len() {
        if in_test(input, sig, k) {
            continue;
        }
        let t = tok!(input, sig, k);
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && matches(input, sig, k + 1, &[":", ":", "now", "("])
        {
            out.push(finding(
                input,
                t.line,
                "nondeterminism",
                format!(
                    "`{}::now()` outside the exempt clock modules (crates/parallel/src/budget.rs, crates/trace/src/clock.rs) — route deadlines through Budget and timestamps through parinda_trace::clock so results don't depend on the scheduler",
                    t.text
                ),
            ));
        }
        if t.is_ident("thread") && matches(input, sig, k + 1, &[":", ":", "current", "(", ")", ".", "id"])
        {
            out.push(finding(
                input,
                t.line,
                "nondeterminism",
                "`thread::current().id()` in non-diagnostic code — results must not depend on which worker ran an item".into(),
            ));
        }
    }
}

fn hash_iteration(input: &FileInput<'_>, sig: &[usize], out: &mut Vec<Finding>) {
    let hash_names = collect_hash_typed_names(input, sig);
    if hash_names.is_empty() {
        return;
    }
    let flag = |out: &mut Vec<Finding>, line: u32, name: &str, how: &str| {
        out.push(Finding {
            file: input.rel.to_string(),
            line,
            rule: "nondeterminism",
            message: format!(
                "{how} of hash-ordered `{name}` can feed result order — use BTreeMap/BTreeSet or sort before use (determinism contract, tests/determinism.rs)"
            ),
        });
    };
    for k in 0..sig.len() {
        if in_test(input, sig, k) {
            continue;
        }
        let t = tok!(input, sig, k);
        // NAME.iter() / NAME.keys() / … (also self.NAME.iter())
        if t.is_punct('.') {
            if let Some(m) = ident_text(input, sig, k + 1) {
                if ITER_METHODS.contains(&m)
                    && matches(input, sig, k + 2, &["("])
                    && k > 0
                    && ident_text(input, sig, k - 1)
                        .map(|r| hash_names.contains(&r.to_string()))
                        .unwrap_or(false)
                {
                    let name = ident_text(input, sig, k - 1).unwrap_or("?");
                    flag(out, tok!(input, sig, k + 1).line, name, &format!("`.{m}()`"));
                }
            }
        }
        // for PAT in [&][mut] [self.]NAME {
        if t.is_ident("for") {
            if let Some((name, line)) = for_loop_over(input, sig, k) {
                if hash_names.contains(&name.to_string()) {
                    flag(out, line, name, "`for` iteration");
                }
            }
        }
    }
}

/// Names bound with a `HashMap`/`HashSet` type in this file: explicit
/// annotations (`let m: HashMap<…>`, struct fields, fn params), local
/// type aliases (`type Memo = HashMap<…>` makes both `Memo` and
/// anything annotated `: Memo` hash-typed), and constructor bindings
/// (`let m = HashMap::new()`).
fn collect_hash_typed_names(input: &FileInput<'_>, sig: &[usize]) -> Vec<String> {
    let mut hash_types: Vec<String> = vec!["HashMap".into(), "HashSet".into()];
    // Pass 0: type aliases.
    for k in 0..sig.len() {
        if tok!(input, sig, k).is_ident("type") {
            if let Some(alias) = ident_text(input, sig, k + 1) {
                if matches(input, sig, k + 2, &["="]) {
                    let mut j = k + 3;
                    while j < sig.len() && !tok!(input, sig, j).is_punct(';') {
                        let t = tok!(input, sig, j);
                        if t.is_ident("HashMap") || t.is_ident("HashSet") {
                            hash_types.push(alias.to_string());
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
    }
    let is_hash_type = |t: &Tok<'_>| t.kind == TokKind::Ident && hash_types.iter().any(|h| h == t.text);

    let mut names: Vec<String> = Vec::new();
    for k in 0..sig.len() {
        let t = tok!(input, sig, k);
        if t.kind != TokKind::Ident {
            continue;
        }
        // `NAME : Type…` — a single colon (not `::`) starts a type (or
        // struct-literal field value, which for `f: HashMap::new()` is
        // just as binding).
        let single_colon = matches(input, sig, k + 1, &[":"])
            && !matches(input, sig, k + 2, &[":"])
            && !(k > 0 && tok!(input, sig, k - 1).is_punct(':'));
        if single_colon {
            let mut angle = 0i32;
            let mut j = k + 2;
            let mut steps = 0;
            while j < sig.len() && steps < 48 {
                let tj = tok!(input, sig, j);
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle -= 1;
                    if angle < 0 {
                        break;
                    }
                } else if angle == 0
                    && (tj.is_punct('=') || tj.is_punct(';') || tj.is_punct(',') || tj.is_punct(')')
                        || tj.is_punct('{') || tj.is_punct('}'))
                {
                    break;
                } else if is_hash_type(tj) {
                    names.push(t.text.to_string());
                    break;
                }
                j += 1;
                steps += 1;
            }
        }
        // `let [mut] NAME = <HashType>::…`
        if t.is_ident("let") {
            let mut j = k + 1;
            if matches(input, sig, j, &["mut"]) {
                j += 1;
            }
            if let Some(name) = ident_text(input, sig, j) {
                if matches(input, sig, j + 1, &["="])
                    && sig.get(j + 2).map(|&i| is_hash_type(&input.toks[i])).unwrap_or(false)
                {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// If `sig[k]` is a `for` keyword, resolve the loop's iterated name:
/// `for PAT in [&][mut] [self.]NAME {` → `Some((NAME, line_of_NAME))`.
/// Returns `None` when the iterated expression is a call chain (those
/// are caught by the method-call check instead).
fn for_loop_over<'a>(input: &FileInput<'a>, sig: &[usize], k: usize) -> Option<(&'a str, u32)> {
    // Find `in` at nesting depth 0 (tuple patterns contain `(`/`)`).
    let mut depth = 0i32;
    let mut j = k + 1;
    loop {
        let &i = sig.get(j)?;
        let t = &input.toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break;
        } else if depth == 0 && t.is_punct('{') {
            return None; // malformed / generics confusion — bail out
        }
        j += 1;
        if j > k + 32 {
            return None;
        }
    }
    // After `in`: strip `&`, `mut`, and a leading `self.`
    j += 1;
    while matches(input, sig, j, &["&"]) || matches(input, sig, j, &["mut"]) {
        j += 1;
    }
    if matches(input, sig, j, &["self", "."]) {
        j += 2;
    }
    let name = ident_text(input, sig, j)?;
    // Only a *direct* iteration (`{` follows the name) counts here.
    matches(input, sig, j + 1, &["{"]).then(|| (name, input.toks[sig[j]].line))
}

fn ident_text<'a>(input: &FileInput<'a>, sig: &[usize], k: usize) -> Option<&'a str> {
    sig.get(k).and_then(|&i| {
        let t = &input.toks[i];
        (t.kind == TokKind::Ident).then_some(t.text)
    })
}

/// Do the significant tokens at `k..` match `pat` exactly, where each
/// pattern element is either a punctuation char or an identifier?
fn matches(input: &FileInput<'_>, sig: &[usize], k: usize, pat: &[&str]) -> bool {
    for (n, p) in pat.iter().enumerate() {
        let Some(&i) = sig.get(k + n) else { return false };
        let t = &input.toks[i];
        let ok = if p.len() == 1 && !p.chars().next().unwrap().is_ascii_alphabetic() {
            t.is_punct(p.chars().next().unwrap())
        } else {
            t.is_ident(p)
        };
        if !ok {
            return false;
        }
    }
    true
}

// ----------------------------------------------------------- lock-discipline

fn lock_discipline(input: &FileInput<'_>, sig: &[usize], out: &mut Vec<Finding>) {
    for k in 0..sig.len() {
        if in_test(input, sig, k) {
            continue;
        }
        let t = tok!(input, sig, k);
        if !t.is_punct('.') {
            continue;
        }
        let Some(guard) = ident_text(input, sig, k + 1) else { continue };
        if !matches!(guard, "lock" | "read" | "write") {
            continue;
        }
        if !matches(input, sig, k + 2, &["(", ")", "."]) {
            continue;
        }
        let Some(handler) = ident_text(input, sig, k + 5) else { continue };
        if (handler == "unwrap" || handler == "expect") && matches(input, sig, k + 6, &["("]) {
            out.push(finding(
                input,
                tok!(input, sig, k + 1).line,
                "lock-discipline",
                format!(
                    "`.{guard}().{handler}(…)` propagates mutex poisoning as a panic — recover with `.{guard}().unwrap_or_else(|p| p.into_inner())` (PR 2 idiom) or return a typed error"
                ),
            ));
        }
    }
}

// ------------------------------------------------------- failpoint-coverage

/// Inputs for the cross-file failpoint rule, gathered by the engine.
pub struct FailpointInputs<'a> {
    /// Path of the registry (`crates/failpoint/src/lib.rs`).
    pub registry_rel: &'a str,
    /// `(site, line)` pairs from the registry's `SITES` const, parsed
    /// by [`parse_sites`] from the registry's token stream (the engine
    /// lexes every file exactly once and shares the tokens).
    pub sites: &'a [(String, u32)],
    /// Path of the failpoint matrix test (`tests/failpoints.rs`).
    pub test_rel: &'a str,
    /// Its source text (empty string = file missing).
    pub test_src: &'a str,
    /// Path of the README holding the site table.
    pub readme_rel: &'a str,
    /// Its text (empty string = file missing).
    pub readme_src: &'a str,
    /// Every `should_fail("…")` call site found in the workspace:
    /// `(file, line, site-name)`.
    pub call_sites: &'a [(String, u32, String)],
}

/// Reconcile the `SITES` registry against call sites, the matrix test,
/// and the README table:
///
/// * duplicate registry entries,
/// * **orphans** — registered sites no `should_fail("…")` references,
/// * **undocumented** — `should_fail("…")` names missing from `SITES`,
/// * sites absent from `tests/failpoints.rs`,
/// * sites absent from the README site table.
pub fn check_failpoints(inp: &FailpointInputs<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let sites = inp.sites;
    if sites.is_empty() {
        out.push(Finding {
            file: inp.registry_rel.to_string(),
            line: 1,
            rule: "failpoint-coverage",
            message: "could not find a non-empty `SITES: &[&str]` registry in this file".into(),
        });
        return out;
    }
    let mut seen: Vec<&str> = Vec::new();
    for (name, line) in sites {
        if seen.contains(&name.as_str()) {
            out.push(Finding {
                file: inp.registry_rel.to_string(),
                line: *line,
                rule: "failpoint-coverage",
                message: format!("duplicate site `{name}` in SITES"),
            });
            continue;
        }
        seen.push(name);
        if !inp.call_sites.iter().any(|(_, _, s)| s == name) {
            out.push(Finding {
                file: inp.registry_rel.to_string(),
                line: *line,
                rule: "failpoint-coverage",
                message: format!(
                    "orphan site `{name}`: registered in SITES but no `should_fail(\"{name}\")` call exists"
                ),
            });
        }
        if !inp.test_src.contains(name.as_str()) {
            out.push(Finding {
                file: inp.registry_rel.to_string(),
                line: *line,
                rule: "failpoint-coverage",
                message: format!("site `{name}` is not named in {} — add it to the site manifest there", inp.test_rel),
            });
        }
        if !inp.readme_src.contains(name.as_str()) {
            out.push(Finding {
                file: inp.registry_rel.to_string(),
                line: *line,
                rule: "failpoint-coverage",
                message: format!("site `{name}` is missing from the site table in {}", inp.readme_rel),
            });
        }
    }
    for (file, line, name) in inp.call_sites {
        if !sites.iter().any(|(s, _)| s == name) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "failpoint-coverage",
                message: format!(
                    "`should_fail(\"{name}\")` names a site that is not registered in SITES ({})",
                    inp.registry_rel
                ),
            });
        }
    }
    out.sort();
    out
}

/// Extract `(site, line)` pairs from the `SITES` const in the lexed
/// registry: every string literal between `SITES` and the `]` closing
/// its slice initializer.
pub fn parse_sites(toks: &[Tok<'_>]) -> Vec<(String, u32)> {
    let sig: Vec<&Tok<'_>> = toks.iter().filter(|t| !t.is_trivia()).collect();
    let mut out = Vec::new();
    let mut k = 0;
    while k < sig.len() {
        if sig[k].is_ident("SITES") {
            // Skip the `: &[&str]` type annotation (it contains brackets
            // of its own) — the slice literal starts after the `=`.
            let mut j = k + 1;
            while j < sig.len() && !sig[j].is_punct('=') {
                j += 1;
            }
            while j < sig.len() && !sig[j].is_punct('[') {
                j += 1;
            }
            let mut depth = 0i32;
            while j < sig.len() {
                let t = sig[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Str {
                    let name = t.text.trim_matches('"').to_string();
                    out.push((name, t.line));
                }
                j += 1;
            }
            break;
        }
        k += 1;
    }
    out
}

// --------------------------------------------------------- trace-coverage

/// Marker text the `trace-coverage` rule looks for in DESIGN.md. The
/// full marker is an HTML comment (invisible when rendered):
///
/// ```text
/// <!-- parinda-trace: phases: parse plan whatif … -->
/// ```
pub const TRACE_PHASE_MARKER: &str = "parinda-trace: phases:";

/// Inputs for the cross-file trace rule, gathered by the engine.
pub struct TraceCoverageInputs<'a> {
    /// Path of the design doc holding the phase marker (`DESIGN.md`).
    pub design_rel: &'a str,
    /// Its text (empty string = file missing).
    pub design_src: &'a str,
    /// Every `.span("…")` call site found in the workspace:
    /// `(file, line, span-path)`.
    pub span_sites: &'a [(String, u32, String)],
}

/// Reconcile the DESIGN.md pipeline-phase marker against the span call
/// sites:
///
/// * marker missing or empty,
/// * duplicate phases in the marker,
/// * **untraced** — a declared phase with no `.span("…")` call site
///   whose path starts with it,
/// * **undeclared** — a span path whose top-level phase the marker does
///   not list (the docs and the instrumentation drifted apart).
pub fn check_trace_coverage(inp: &TraceCoverageInputs<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((marker_line, phases)) = parse_phase_marker(inp.design_src) else {
        out.push(Finding {
            file: inp.design_rel.to_string(),
            line: 1,
            rule: "trace-coverage",
            message: format!(
                "could not find a non-empty `<!-- {TRACE_PHASE_MARKER} … -->` pipeline marker in this file"
            ),
        });
        return out;
    };
    let mut seen: Vec<&str> = Vec::new();
    for phase in &phases {
        if seen.contains(&phase.as_str()) {
            out.push(Finding {
                file: inp.design_rel.to_string(),
                line: marker_line,
                rule: "trace-coverage",
                message: format!("duplicate phase `{phase}` in the pipeline marker"),
            });
            continue;
        }
        seen.push(phase);
        let covered =
            inp.span_sites.iter().any(|(_, _, p)| phase_of(p) == phase.as_str());
        if !covered {
            out.push(Finding {
                file: inp.design_rel.to_string(),
                line: marker_line,
                rule: "trace-coverage",
                message: format!(
                    "phase `{phase}` has no `.span(\"{phase}…\")` call site — the pipeline diagram promises it is traced"
                ),
            });
        }
    }
    for (file, line, path) in inp.span_sites {
        let head = phase_of(path);
        if !phases.iter().any(|p| p == head) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "trace-coverage",
                message: format!(
                    "span path `{path}` starts with phase `{head}` which is not declared in the {} pipeline marker",
                    inp.design_rel
                ),
            });
        }
    }
    out.sort();
    out
}

/// Top-level phase of a span path: `ilp_rounds/bnb` → `ilp_rounds`.
fn phase_of(path: &str) -> &str {
    path.split('/').next().unwrap_or(path)
}

/// Find the phase marker: `(1-based line, phase names)`. The phase list
/// runs from the marker text to the closing `-->` (or end of line).
fn parse_phase_marker(src: &str) -> Option<(u32, Vec<String>)> {
    for (i, line) in src.lines().enumerate() {
        let Some(at) = line.find(TRACE_PHASE_MARKER) else { continue };
        let rest = &line[at + TRACE_PHASE_MARKER.len()..];
        let rest = rest.split("-->").next().unwrap_or(rest);
        let phases: Vec<String> = rest.split_whitespace().map(String::from).collect();
        if !phases.is_empty() {
            return Some((i as u32 + 1, phases));
        }
    }
    None
}

/// Collect `.span("…")` call sites from a lexed file (used by the
/// engine while it has the tokens in hand). Test-scope calls are
/// skipped — tests may open arbitrary spans; only production
/// instrumentation counts toward phase coverage.
pub fn collect_span_sites(
    rel: &str,
    toks: &[Tok<'_>],
    in_test: &[bool],
) -> Vec<(String, u32, String)> {
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_trivia()).collect();
    let mut out = Vec::new();
    for k in 0..sig.len() {
        if in_test[sig[k]] {
            continue;
        }
        if toks[sig[k]].is_punct('.')
            && sig.get(k + 1).map(|&i| toks[i].is_ident("span")).unwrap_or(false)
            && sig.get(k + 2).map(|&i| toks[i].is_punct('(')).unwrap_or(false)
        {
            if let Some(&i) = sig.get(k + 3) {
                let t = &toks[i];
                if t.kind == TokKind::Str {
                    out.push((rel.to_string(), t.line, t.text.trim_matches('"').to_string()));
                }
            }
        }
    }
    out
}

/// Collect `should_fail("…")` call sites from a lexed file (used by the
/// engine while it has the tokens in hand). Test-scope calls are
/// skipped — tests may probe arbitrary site names.
pub fn collect_should_fail_sites(
    rel: &str,
    toks: &[Tok<'_>],
    in_test: &[bool],
) -> Vec<(String, u32, String)> {
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_trivia()).collect();
    let mut out = Vec::new();
    for k in 0..sig.len() {
        if in_test[sig[k]] {
            continue;
        }
        if toks[sig[k]].is_ident("should_fail")
            && sig.get(k + 1).map(|&i| toks[i].is_punct('(')).unwrap_or(false)
        {
            if let Some(&i) = sig.get(k + 2) {
                let t = &toks[i];
                if t.kind == TokKind::Str {
                    out.push((rel.to_string(), t.line, t.text.trim_matches('"').to_string()));
                }
            }
        }
    }
    out
}
