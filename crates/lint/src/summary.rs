//! Per-function summaries: the intraprocedural half of the lock
//! analysis.
//!
//! [`collect_summaries`] walks one lexed file and produces a
//! [`FnSummary`] per production function: which lock guards it
//! acquires, which calls it makes, and which blocking / `catch_unwind`
//! sites it contains — each event annotated with the set of guards
//! *live* at that point. Liveness is tracked syntactically:
//!
//! * a guard bound by `let [mut] NAME = <acquisition>;` lives until an
//!   explicit `drop(NAME)` or the closing brace of its block,
//! * a temporary guard in an `if`/`while` condition dies at the `{`
//!   opening the body (the condition is evaluated to a `bool` first),
//! * a temporary guard in a `for` header, `match` scrutinee, or
//!   `if let`/`while let` scrutinee lives through the body (Rust
//!   extends those temporaries to the end of the expression),
//! * any other temporary guard dies at the end of its statement.
//!
//! An *acquisition* is either direct — `self.FIELD.lock()` inside
//! `impl Type` yields the stable identity `Type.FIELD` (a bare
//! `NAME.lock()` receiver yields `NAME`) — or a call to a
//! poison-recovery wrapper (`fn lock` / `fn lock_*`), whose identity is
//! resolved interprocedurally by [`crate::lockgraph`]. The poison
//! suffix (`.unwrap_or_else(…)` / `.unwrap()` / `.expect(…)`) is part
//! of the acquisition unit, not a separate call.
//!
//! Method calls whose receiver *is* a live guard are not recorded as
//! calls (a `BTreeMap` guard's `.insert(…)` is not a call into our
//! code), but blocking method names on a guard receiver still count —
//! `g.file.write_all(…)` under the WAL guard is exactly the site the
//! `blocking-while-locked` rule exists for.

use crate::lexer::{Tok, TokKind};

/// How a guard came to exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcqKind {
    /// `self.FIELD.lock()` (or bare `NAME.lock()`): identity known
    /// immediately.
    Direct(String),
    /// A call to a `lock`/`lock_*`-named function; the identity comes
    /// from the callee's summary once the call graph is resolved.
    Wrapper(CallTarget),
}

/// One lock acquisition inside a function.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// Direct identity or wrapper callee.
    pub kind: AcqKind,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `self.name(…)` — resolved against the enclosing impl type
    /// first, then by bare name.
    SelfMethod(String),
    /// `name(…)` or `path::name(…)` — resolved by bare name.
    Plain(String),
    /// `expr.name(…)` with a non-self, non-guard receiver — resolved
    /// by bare name.
    Method(String),
}

impl CallTarget {
    /// The bare callee name.
    pub fn name(&self) -> &str {
        match self {
            CallTarget::SelfMethod(n) | CallTarget::Plain(n) | CallTarget::Method(n) => n,
        }
    }
}

/// One event inside a function body, in source order. `held` lists the
/// indices (into [`FnSummary::acquisitions`]) of guards live at the
/// event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A lock acquisition (`acq` indexes [`FnSummary::acquisitions`]).
    Acquire {
        /// Index into the function's acquisition list.
        acq: usize,
        /// Guards live when this one was taken.
        held: Vec<usize>,
    },
    /// A call into possibly-our code.
    Call {
        /// Callee reference for resolution.
        target: CallTarget,
        /// 1-based line of the call.
        line: u32,
        /// Guards live at the call.
        held: Vec<usize>,
    },
    /// A direct blocking operation (fsync/write_all/sleep/recv/…).
    Blocking {
        /// The blocking method/function name.
        what: String,
        /// 1-based line.
        line: u32,
        /// Guards live at the site.
        held: Vec<usize>,
    },
    /// A `catch_unwind(` boundary.
    Unwind {
        /// 1-based line.
        line: u32,
        /// Guards live at the boundary.
        held: Vec<usize>,
    },
}

/// Summary of one production function.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Workspace-relative file the function lives in.
    pub file: String,
    /// Enclosing `impl` type, if any.
    pub impl_type: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Every acquisition, in source order.
    pub acquisitions: Vec<Acquisition>,
    /// Every event, in source order.
    pub events: Vec<Event>,
}

impl FnSummary {
    /// Is this a poison-recovery wrapper candidate (`fn lock` /
    /// `fn lock_*` containing a *direct* acquisition)? Returns the
    /// wrapped identity.
    pub fn wrapper_identity(&self) -> Option<&str> {
        if self.name != "lock" && !self.name.starts_with("lock_") {
            return None;
        }
        self.acquisitions.iter().find_map(|a| match &a.kind {
            AcqKind::Direct(id) => Some(id.as_str()),
            AcqKind::Wrapper(_) => None,
        })
    }
}

/// Function/method names that block the calling thread.
const BLOCKING_NAMES: &[&str] = &[
    "sync_all",
    "sync_data",
    "fsync",
    "write_all",
    "sleep",
    "recv",
    "recv_timeout",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
];

/// Is `name` a blocking operation? `join` only counts with empty
/// argument parens (thread-handle join; `strs.join("\n")` is not
/// blocking), which the caller checks separately.
fn is_blocking_name(name: &str) -> bool {
    BLOCKING_NAMES.contains(&name) || name.starts_with("par_")
}

/// Keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "let", "in", "as", "move", "loop", "else", "fn",
    "impl", "pub", "use", "mod", "where", "unsafe", "dyn", "ref", "mut", "break", "continue",
];

/// How a temporary (unbound) guard dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardLife {
    /// `let`-bound: dies at `drop(name)` or when its block closes.
    Bound,
    /// Plain-statement temporary: dies at the next `;` (or block
    /// close).
    Stmt,
    /// `if`/`while` condition temporary: dies at the `{` opening the
    /// body.
    CondHeader,
    /// `for`/`match`/`if let`/`while let` header temporary: lives
    /// through the body (armed at the `{`, dies when that block
    /// closes).
    ExtendedPending,
    /// An `ExtendedPending` guard after its body `{` opened.
    Extended,
}

#[derive(Debug, Clone)]
struct Guard {
    acq: usize,
    name: Option<String>,
    birth_depth: i32,
    life: GuardLife,
}

struct FnFrame {
    summary: FnSummary,
    body_depth: i32,
    guards: Vec<Guard>,
    // `let [mut] NAME =` seen in the current statement.
    pending_let: Option<String>,
    // control keyword opened the current statement (`if`, `while`,
    // `for`, `match`), and whether a `let` followed it (`if let`).
    ctrl: Option<(&'static str, bool)>,
}

impl FnFrame {
    fn held(&self) -> Vec<usize> {
        self.guards.iter().map(|g| g.acq).collect()
    }

    fn stmt_end(&mut self, depth: i32) {
        self.pending_let = None;
        self.ctrl = None;
        self.guards.retain(|g| g.life != GuardLife::Stmt || g.birth_depth < depth);
    }

    fn block_open(&mut self, new_depth: i32) {
        // `if`/`while` condition temporaries die at the body brace;
        // extended-header temporaries become block-scoped to the body.
        self.guards.retain(|g| g.life != GuardLife::CondHeader);
        for g in &mut self.guards {
            if g.life == GuardLife::ExtendedPending {
                g.life = GuardLife::Extended;
                g.birth_depth = new_depth;
            }
        }
        self.pending_let = None;
        self.ctrl = None;
    }

    fn block_close(&mut self, new_depth: i32) {
        self.guards.retain(|g| g.birth_depth <= new_depth);
        self.pending_let = None;
        self.ctrl = None;
    }
}

/// Walk one lexed file and summarize every production function.
/// Test-scope functions (per `in_test`) are skipped entirely.
pub fn collect_summaries(rel: &str, toks: &[Tok<'_>], in_test: &[bool]) -> Vec<FnSummary> {
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_trivia()).collect();
    let t = |k: usize| -> Option<&Tok<'_>> { sig.get(k).map(|&i| &toks[i]) };
    let ident = |k: usize| -> Option<&str> {
        t(k).and_then(|tk| (tk.kind == TokKind::Ident).then_some(tk.text))
    };
    let punct = |k: usize, c: char| -> bool { t(k).map(|tk| tk.is_punct(c)).unwrap_or(false) };

    let mut out: Vec<FnSummary> = Vec::new();
    // (impl type name, brace depth its body opened at)
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    // `impl` seen; capture the type at the next body `{`.
    let mut pending_impl: Option<String> = None;
    // `fn NAME` seen; push a frame at the next body `{` (a `;` first
    // means a trait method declaration — discard).
    let mut pending_fn: Option<(String, u32)> = None;
    let mut fn_stack: Vec<FnFrame> = Vec::new();
    let mut depth: i32 = 0;

    let mut k = 0usize;
    while k < sig.len() {
        let tk = &toks[sig[k]];
        let test = in_test[sig[k]];

        if tk.is_punct('{') {
            depth += 1;
            if let Some(ty) = pending_impl.take() {
                impl_stack.push((ty, depth));
            } else if let Some((name, line)) = pending_fn.take() {
                fn_stack.push(FnFrame {
                    summary: FnSummary {
                        file: rel.to_string(),
                        impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                        name,
                        line,
                        acquisitions: Vec::new(),
                        events: Vec::new(),
                    },
                    body_depth: depth,
                    guards: Vec::new(),
                    pending_let: None,
                    ctrl: None,
                });
            } else if let Some(f) = fn_stack.last_mut() {
                f.block_open(depth);
            }
            k += 1;
            continue;
        }
        if tk.is_punct('}') {
            depth -= 1;
            while fn_stack.last().map(|f| f.body_depth > depth).unwrap_or(false) {
                let f = fn_stack.pop().expect("guarded by last()");
                out.push(f.summary);
            }
            if let Some(f) = fn_stack.last_mut() {
                f.block_close(depth);
            }
            while impl_stack.last().map(|(_, d)| *d > depth).unwrap_or(false) {
                impl_stack.pop();
            }
            k += 1;
            continue;
        }
        if tk.is_punct(';') {
            pending_fn = None; // trait method declaration without a body
            if let Some(f) = fn_stack.last_mut() {
                f.stmt_end(depth);
            }
            k += 1;
            continue;
        }

        if tk.is_ident("impl") && !test {
            pending_impl = impl_type_name(toks, &sig, k);
            k += 1;
            continue;
        }
        if tk.is_ident("fn") {
            if test {
                // A test-scope fn: skip its signature; its body tokens
                // are all masked anyway and never produce events.
                k += 1;
                continue;
            }
            if let Some(name) = ident(k + 1) {
                pending_fn = Some((name.to_string(), tk.line));
            }
            k += 2;
            continue;
        }

        // Everything below is only meaningful inside a production fn.
        let in_fn = fn_stack.last().is_some();
        if !in_fn || test {
            k += 1;
            continue;
        }

        // Statement-shape bookkeeping.
        if tk.kind == TokKind::Ident {
            match tk.text {
                "if" | "while" | "for" | "match" => {
                    let kw: &'static str = match tk.text {
                        "if" => "if",
                        "while" => "while",
                        "for" => "for",
                        _ => "match",
                    };
                    let has_let = ident(k + 1) == Some("let");
                    if let Some(f) = fn_stack.last_mut() {
                        f.ctrl = Some((kw, has_let));
                    }
                    k += 1;
                    continue;
                }
                "let" => {
                    // `let [mut] NAME =` — remember the binding name so
                    // an acquisition ending exactly at `;` binds to it.
                    let mut j = k + 1;
                    if ident(j) == Some("mut") {
                        j += 1;
                    }
                    if let (Some(name), true) = (ident(j), punct(j + 1, '=')) {
                        if let Some(f) = fn_stack.last_mut() {
                            if f.ctrl.is_none() {
                                f.pending_let = Some(name.to_string());
                            }
                        }
                    }
                    k += 1;
                    continue;
                }
                _ => {}
            }
        }

        // `drop(NAME)` kills a bound guard.
        if tk.is_ident("drop") && punct(k + 1, '(') {
            if let (Some(name), true) = (ident(k + 2), punct(k + 3, ')')) {
                if let Some(f) = fn_stack.last_mut() {
                    f.guards.retain(|g| g.name.as_deref() != Some(name));
                }
                k += 4;
                continue;
            }
        }

        // `catch_unwind(`.
        if tk.is_ident("catch_unwind") && punct(k + 1, '(') {
            let f = fn_stack.last_mut().expect("in_fn checked");
            let held = f.held();
            f.summary.events.push(Event::Unwind { line: tk.line, held });
            k += 2;
            continue;
        }

        // Acquisitions — anchored on an ident followed by `(`.
        if let Some(next_k) = try_acquisition(toks, &sig, k, depth, &mut fn_stack) {
            k = next_k;
            continue;
        }

        // Calls and blocking operations: `NAME(` shapes.
        if tk.kind == TokKind::Ident && punct(k + 1, '(') && !NON_CALL_KEYWORDS.contains(&tk.text)
        {
            let name = tk.text;
            let prev_dot = k > 0 && punct(k - 1, '.');
            let empty_args = punct(k + 2, ')');
            let f = fn_stack.last_mut().expect("in_fn checked");
            let held = f.held();

            // Blocking check first: applies to every receiver shape,
            // including guard receivers (`g.file.write_all(…)`).
            if is_blocking_name(name) || (name == "join" && empty_args) {
                f.summary.events.push(Event::Blocking {
                    what: name.to_string(),
                    line: tk.line,
                    held: held.clone(),
                });
            }

            // Call-graph edge (skip type/variant constructors and
            // guard-receiver methods; `name!(…)` macros never reach
            // here — their `!` sits before the paren).
            let uppercase = name.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false);
            if !uppercase {
                let target = if prev_dot {
                    receiver_target(toks, &sig, k, f)
                } else {
                    Some(CallTarget::Plain(name.to_string()))
                };
                if let Some(target) = target {
                    f.summary.events.push(Event::Call { target, line: tk.line, held });
                }
            }
            k += 2;
            continue;
        }

        k += 1;
    }

    // Unclosed functions (malformed fixture input): flush what we have.
    while let Some(f) = fn_stack.pop() {
        out.push(f.summary);
    }
    out
}

/// At sig index `k` (ident followed by `(`): is this an acquisition?
/// Handles both direct `.lock()` receivers and `lock`/`lock_*` wrapper
/// calls, consumes the poison suffix, classifies the guard's lifetime,
/// and returns the sig index to resume at.
fn try_acquisition(
    toks: &[Tok<'_>],
    sig: &[usize],
    k: usize,
    depth: i32,
    fn_stack: &mut [FnFrame],
) -> Option<usize> {
    let t = |j: usize| -> Option<&Tok<'_>> { sig.get(j).map(|&i| &toks[i]) };
    let ident = |j: usize| -> Option<&str> {
        t(j).and_then(|tk| (tk.kind == TokKind::Ident).then_some(tk.text))
    };
    let punct = |j: usize, c: char| -> bool { t(j).map(|tk| tk.is_punct(c)).unwrap_or(false) };

    let tk = t(k)?;
    if tk.kind != TokKind::Ident || !punct(k + 1, '(') {
        return None;
    }
    let name = tk.text;
    let line = tk.line;
    let prev_dot = k > 0 && punct(k - 1, '.');

    let frame_impl =
        fn_stack.last().and_then(|f| f.summary.impl_type.clone());

    // Direct: `X.lock()` / `self.FIELD.lock()`.
    let kind: AcqKind = if name == "lock" && prev_dot && punct(k + 2, ')') {
        let recv = ident(k.wrapping_sub(2));
        let recv_prev_dot = k >= 3 && punct(k - 3, '.');
        let recv_prev_prev_self = k >= 4 && ident(k - 4) == Some("self");
        match recv {
            // `self.FIELD.lock()` → `ImplType.FIELD`
            Some(field) if recv_prev_dot && recv_prev_prev_self => {
                let ty = frame_impl.clone().unwrap_or_else(|| "self".to_string());
                AcqKind::Direct(format!("{ty}.{field}"))
            }
            // `self.lock()` → wrapper call on the impl type
            Some("self") if !recv_prev_dot => {
                AcqKind::Wrapper(CallTarget::SelfMethod("lock".to_string()))
            }
            // bare `NAME.lock()` (fixture convenience) → identity NAME
            Some(recv_name) if !recv_prev_dot => AcqKind::Direct(recv_name.to_string()),
            // expression receiver (`state().lock()`, `self.a.b.lock()`
            // deeper than one field) — not modeled.
            _ => return None,
        }
    } else if name.starts_with("lock_") {
        // `lock_*` wrapper calls, any receiver shape. (A bare `lock(`
        // free function or a `lock(…)` with arguments is not an
        // acquisition we can attribute — the failpoint crate's
        // internal helper stays invisible by design.)
        let recv = if prev_dot { ident(k.wrapping_sub(2)) } else { None };
        let recv_prev_dot = k >= 3 && punct(k - 3, '.');
        let target = if prev_dot {
            match recv {
                Some("self") if !recv_prev_dot => CallTarget::SelfMethod(name.to_string()),
                _ => CallTarget::Method(name.to_string()),
            }
        } else {
            CallTarget::Plain(name.to_string())
        };
        AcqKind::Wrapper(target)
    } else {
        return None;
    };

    // Find the end of the call: matching `)` of the argument list.
    let mut j = k + 1;
    let mut paren = 0i32;
    while let Some(tj) = t(j) {
        if tj.is_punct('(') {
            paren += 1;
        } else if tj.is_punct(')') {
            paren -= 1;
            if paren == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    // Poison suffix: `.unwrap_or_else(…)` / `.unwrap()` / `.expect(…)`.
    loop {
        if punct(j, '.')
            && matches!(ident(j + 1), Some("unwrap_or_else" | "unwrap" | "expect"))
            && punct(j + 2, '(')
        {
            let mut p = 0i32;
            let mut m = j + 2;
            while let Some(tm) = t(m) {
                if tm.is_punct('(') {
                    p += 1;
                } else if tm.is_punct(')') {
                    p -= 1;
                    if p == 0 {
                        m += 1;
                        break;
                    }
                }
                m += 1;
            }
            j = m;
        } else {
            break;
        }
    }

    let f = fn_stack.last_mut()?;
    let held = f.held();
    let acq_idx = f.summary.acquisitions.len();
    f.summary.acquisitions.push(Acquisition { line, kind });
    f.summary.events.push(Event::Acquire { acq: acq_idx, held });

    // Classify the guard's lifetime.
    let ends_at_semicolon = punct(j, ';');
    let life = if f.pending_let.is_some() && ends_at_semicolon {
        GuardLife::Bound
    } else {
        match f.ctrl {
            Some(("for", _)) | Some(("match", _)) => GuardLife::ExtendedPending,
            Some((_, true)) => GuardLife::ExtendedPending, // if let / while let
            Some(("if", false)) | Some(("while", false)) => GuardLife::CondHeader,
            _ => GuardLife::Stmt,
        }
    };
    let name = if life == GuardLife::Bound { f.pending_let.take() } else { None };
    f.guards.push(Guard { acq: acq_idx, name, birth_depth: depth, life });
    Some(j)
}

/// Resolve the receiver of `.name(` at sig index `k` into a call
/// target, or `None` when the receiver chain is rooted in a live guard
/// binding or is an opaque expression.
fn receiver_target(
    toks: &[Tok<'_>],
    sig: &[usize],
    k: usize,
    f: &FnFrame,
) -> Option<CallTarget> {
    let t = |j: usize| -> Option<&Tok<'_>> { sig.get(j).map(|&i| &toks[i]) };
    let name = t(k)?.text.to_string();
    // Walk the receiver chain leftwards: `root.a.b.name(` → root.
    let mut j = k - 1; // the `.`
    loop {
        if j == 0 {
            return Some(CallTarget::Method(name));
        }
        let prev = t(j - 1)?;
        if prev.kind == TokKind::Ident {
            // continue if another `.` precedes the ident
            if j >= 2 && t(j - 2).map(|p| p.is_punct('.')).unwrap_or(false) {
                j -= 2;
                continue;
            }
            // root ident found
            let root = prev.text;
            if root == "self" {
                // `self.name(` (j == k-1) is a self-method; deeper
                // chains (`self.field.name(`) resolve by bare name.
                return if j == k - 1 {
                    Some(CallTarget::SelfMethod(name))
                } else {
                    Some(CallTarget::Method(name))
                };
            }
            if f.guards.iter().any(|g| g.name.as_deref() == Some(root)) {
                return None; // guard-receiver: not a call into our code
            }
            return Some(CallTarget::Method(name));
        }
        // `)`-rooted or other expression receivers: opaque.
        return None;
    }
}

/// After `impl`, find the implemented type's name: the last path
/// segment before the body `{` (after `for` if present), skipping
/// generic parameter lists.
fn impl_type_name(toks: &[Tok<'_>], sig: &[usize], k: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut after_for = false;
    let mut last: Option<&str> = None;
    let mut last_after_for: Option<&str> = None;
    let mut j = k + 1;
    while let Some(&i) = sig.get(j) {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('{') || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") {
                after_for = true;
            } else if t.kind == TokKind::Ident {
                if after_for {
                    last_after_for = Some(t.text);
                } else {
                    last = Some(t.text);
                }
            }
        }
        j += 1;
        if j > k + 64 {
            break;
        }
    }
    last_after_for.or(last).map(String::from)
}
