//! # parinda-lint
//!
//! A from-scratch, std-only static-analysis pass enforcing the three
//! contracts PRs 1–3 established, so they stay machine-checked as the
//! codebase grows:
//!
//! * **never-crash** — no `unwrap`/`expect`/`panic!`-family call
//!   survives on a console-reachable path (`panic-site`),
//! * **determinism** — no hash-ordered iteration feeds result order in
//!   the advisor/INUM/solver crates, and nothing outside
//!   `crates/parallel/src/budget.rs` reads the wall clock
//!   (`nondeterminism`),
//! * **containment** — mutex/rwlock poisoning is recovered, never
//!   re-panicked (`lock-discipline`), and every fault-injection site is
//!   registered, exercised, and documented (`failpoint-coverage`).
//!
//! Unlike its predecessor (a 25-line awk script in `ci.sh` whose
//! `in_tests` flag latched on the first `#[cfg(test)]` and never reset,
//! leaving everything below a test module unchecked), this pass lexes
//! real Rust — comments, raw strings, char-vs-lifetime quotes — and
//! tracks test scope by brace depth, entering *and exiting*
//! `#[cfg(test)]` items and `mod tests` blocks.
//!
//! Findings print as `file:line: rule: message` and exit nonzero.
//! Individual sites opt out with a justified inline comment:
//!
//! ```text
//! // parinda-lint: allow(nondeterminism): EXPLAIN ANALYZE measures wall time by design
//! ```
//!
//! The lints are themselves tested: `--fixtures` runs a ui-test-style
//! corpus under `crates/lint/tests/fixtures/`, each case paired with an
//! expected-findings sidecar (see `DESIGN.md` § "Static analysis &
//! enforced contracts" for how to add a rule).

#![deny(missing_docs)]

pub mod engine;
pub mod findings;
pub mod lexer;
pub mod lockgraph;
pub mod rules;
pub mod scope;
pub mod summary;

pub use engine::{find_workspace_root, lint_source, lint_workspace, run_fixtures, Report};
pub use findings::Finding;
