//! Findings and the inline-suppression mechanism.
//!
//! A finding prints as `file:line: rule: message`. A finding can be
//! suppressed with an inline comment on the same line or the line
//! directly above:
//!
//! ```text
//! // parinda-lint: allow(nondeterminism): EXPLAIN ANALYZE measures wall time by design
//! let t0 = Instant::now();
//! ```
//!
//! The reason after the second `:` is **mandatory** — an `allow`
//! without one is itself reported (rule `suppression`), as is an
//! `allow` naming a rule that does not exist. This keeps every
//! exception in the tree self-justifying.

use crate::lexer::{Tok, TokKind};
use std::fmt;

/// Marker text that introduces a suppression comment.
pub const ALLOW_PREFIX: &str = "parinda-lint: allow(";

/// Names of all rules an `allow(…)` may reference.
pub const RULE_NAMES: &[&str] = &[
    "panic-site",
    "nondeterminism",
    "lock-discipline",
    "failpoint-coverage",
    "trace-coverage",
    "lock-order",
    "blocking-while-locked",
    "guard-across-unwind",
    "suppression",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (fixture name in fixture mode).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name, e.g. `panic-site`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A parsed `// parinda-lint: allow(rule): reason` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on; it covers this line and the next.
    pub line: u32,
    /// The rule it names (not yet validated against [`RULE_NAMES`]).
    pub rule: String,
    /// Mandatory justification (empty string when missing).
    pub reason: String,
}

/// Extract suppression comments from a token stream.
///
/// Only plain `//` / `/* */` comments count — doc comments (`///`,
/// `//!`, `/**`, `/*!`) are rendered documentation and may legitimately
/// *describe* the syntax without enacting it.
pub fn collect_suppressions(toks: &[Tok<'_>]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let is_doc = t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(at) = t.text.find(ALLOW_PREFIX) else { continue };
        let rest = &t.text[at + ALLOW_PREFIX.len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_end_matches("*/").trim();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("").to_string();
        out.push(Suppression { line: t.line, rule, reason });
    }
    out
}

/// Apply `sups` to `findings`: drop findings covered by a well-formed
/// suppression, and emit `suppression` findings for malformed ones
/// (missing reason, unknown rule). Returns `(kept, n_suppressed)`.
pub fn apply_suppressions(
    file: &str,
    findings: Vec<Finding>,
    sups: &[Suppression],
) -> (Vec<Finding>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for s in sups {
        if !RULE_NAMES.contains(&s.rule.as_str()) {
            kept.push(Finding {
                file: file.to_string(),
                line: s.line,
                rule: "suppression",
                message: format!("allow({}) names an unknown rule (known: {})", s.rule, RULE_NAMES.join(", ")),
            });
        } else if s.reason.is_empty() {
            kept.push(Finding {
                file: file.to_string(),
                line: s.line,
                rule: "suppression",
                message: format!(
                    "allow({r}) needs a reason: `// parinda-lint: allow({r}): <why this is safe>`",
                    r = s.rule
                ),
            });
        }
    }
    'f: for f in findings {
        for s in sups {
            let covers = s.line == f.line || s.line + 1 == f.line;
            if covers && s.rule == f.rule && !s.reason.is_empty() {
                suppressed += 1;
                continue 'f;
            }
        }
        kept.push(f);
    }
    kept.sort();
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn finding(line: u32, rule: &'static str) -> Finding {
        Finding { file: "f.rs".into(), line, rule, message: "m".into() }
    }

    #[test]
    fn parse_allow_with_reason() {
        let toks = lex("// parinda-lint: allow(panic-site): proven nonempty above\nx.unwrap();");
        let s = collect_suppressions(&toks);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "panic-site");
        assert_eq!(s[0].reason, "proven nonempty above");
        assert_eq!(s[0].line, 1);
    }

    #[test]
    fn same_line_and_next_line_cover() {
        let toks = lex("// parinda-lint: allow(panic-site): reason here");
        let sups = collect_suppressions(&toks);
        let (kept, n) =
            apply_suppressions("f.rs", vec![finding(1, "panic-site"), finding(2, "panic-site")], &sups);
        assert!(kept.is_empty());
        assert_eq!(n, 2);
        let (kept, _) = apply_suppressions("f.rs", vec![finding(3, "panic-site")], &sups);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn wrong_rule_does_not_cover() {
        let toks = lex("// parinda-lint: allow(nondeterminism): timing is diagnostic");
        let sups = collect_suppressions(&toks);
        let (kept, n) = apply_suppressions("f.rs", vec![finding(1, "panic-site")], &sups);
        assert_eq!(kept.len(), 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn missing_reason_is_its_own_finding() {
        let toks = lex("// parinda-lint: allow(panic-site)\nx.unwrap();");
        let sups = collect_suppressions(&toks);
        let (kept, n) = apply_suppressions("f.rs", vec![finding(2, "panic-site")], &sups);
        // the original finding survives AND the bare allow is flagged
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|f| f.rule == "suppression"));
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let toks = lex("// parinda-lint: allow(no-such-rule): because");
        let sups = collect_suppressions(&toks);
        let (kept, _) = apply_suppressions("f.rs", vec![], &sups);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("unknown rule"));
    }

    #[test]
    fn block_comment_suppression_works() {
        let toks = lex("/* parinda-lint: allow(lock-discipline): single-threaded here */ x");
        let s = collect_suppressions(&toks);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].reason, "single-threaded here");
    }
}
