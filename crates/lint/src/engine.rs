//! Workspace walking, per-path rule scoping, suppression application,
//! and the fixture runner behind `--fixtures`.

use crate::findings::{apply_suppressions, collect_suppressions, Finding, Suppression};
use crate::lexer::{lex, lex_count};
use crate::lockgraph::{check_lock_graph, LockGraphInputs};
use crate::rules::{
    check_failpoints, check_file, check_trace_coverage, collect_should_fail_sites,
    collect_span_sites, parse_sites, FailpointInputs, FileInput, RuleSet, TraceCoverageInputs,
};
use crate::scope::test_scope_mask;
use crate::summary::{collect_summaries, FnSummary};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` is reachable from a console command — the
/// never-crash contract applies here (same set `ci.sh`'s awk lint
/// covered, plus `src/bin`).
const PANIC_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/sql/src/",
    "crates/advisor/src/",
    "crates/solver/src/",
    "crates/inum/src/",
    "crates/whatif/src/",
    "crates/server/src/",
    "crates/durability/src/",
    "crates/stream/src/",
    "src/bin/",
];

/// Crates whose outputs must be bit-identical at any thread count —
/// hash-ordered iteration is banned here.
const ITER_SCOPE: &[&str] = &[
    "crates/advisor/src/",
    "crates/inum/src/",
    "crates/solver/src/",
    "crates/durability/src/",
    "crates/stream/src/",
];

/// The files allowed to read the wall clock (deadlines are *defined* in
/// budget.rs; span timestamps are *taken* in clock.rs — the trace
/// contract confines every clock read to that one module), and path
/// prefixes exempt because measuring time is their job.
const WALLCLOCK_EXEMPT_FILES: &[&str] =
    &["crates/parallel/src/budget.rs", "crates/trace/src/clock.rs"];
const WALLCLOCK_EXEMPT_PREFIXES: &[&str] = &["crates/bench/"];

/// Cross-file rule anchors.
const FAILPOINT_REGISTRY: &str = "crates/failpoint/src/lib.rs";
const FAILPOINT_TEST: &str = "tests/failpoints.rs";
const FAILPOINT_README: &str = "README.md";
const TRACE_DESIGN_DOC: &str = "DESIGN.md";

/// Crates whose direct lock acquisitions define *tracked* identities
/// for the interprocedural lock rules (`lock-order`,
/// `blocking-while-locked`, `guard-across-unwind`). Summaries are still
/// built workspace-wide so call chains through other crates resolve,
/// but only guards on these crates' mutexes generate findings.
const LOCK_SCOPE: &[&str] =
    &["crates/server/src/", "crates/durability/src/", "crates/inum/src/"];

/// Result of a workspace lint.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// How many findings valid `allow(…)` comments absorbed.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Number of times the lexer ran during this lint — the
    /// single-pass contract asserts this equals `files` (every rule
    /// shares one token stream per file).
    pub files_lexed: usize,
}

/// Which per-file rules apply at a workspace-relative path.
pub fn rules_for(rel: &str) -> RuleSet {
    let starts = |set: &[&str]| set.iter().any(|p| rel.starts_with(p));
    RuleSet {
        panic_site: starts(PANIC_SCOPE),
        nondet_iter: starts(ITER_SCOPE),
        nondet_wallclock: !WALLCLOCK_EXEMPT_FILES.contains(&rel)
            && !starts(WALLCLOCK_EXEMPT_PREFIXES),
        lock_discipline: true,
    }
}

/// Lint one file's source under a given rule set, applying inline
/// suppressions. Returns `(kept_findings, n_suppressed)`.
pub fn lint_source(rel: &str, src: &str, rules: &RuleSet) -> (Vec<Finding>, usize) {
    let toks = lex(src);
    let mask = test_scope_mask(&toks);
    let input = FileInput { rel, toks: &toks, in_test: &mask };
    let raw = check_file(&input, rules);
    let sups = collect_suppressions(&toks);
    apply_suppressions(rel, raw, &sups)
}

/// Lint the whole workspace rooted at `root`: every `.rs` under
/// `crates/*/src` and the top-level `src/`, plus the cross-file
/// failpoint-coverage rule.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;

    let lex_before = lex_count();
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    let mut call_sites: Vec<(String, u32, String)> = Vec::new();
    let mut span_sites: Vec<(String, u32, String)> = Vec::new();
    let mut registry_sups = Vec::new();
    let mut registry_sites: Vec<(String, u32)> = Vec::new();
    let mut summaries: Vec<FnSummary> = Vec::new();
    let mut sups_by_file: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();

    // One lex per file; every per-file rule and every cross-file
    // collector shares the token stream.
    for path in &files {
        let rel = rel_path(root, path);
        let src = std::fs::read_to_string(path)?;
        let toks = lex(&src);
        let mask = test_scope_mask(&toks);
        call_sites.extend(collect_should_fail_sites(&rel, &toks, &mask));
        span_sites.extend(collect_span_sites(&rel, &toks, &mask));
        summaries.extend(collect_summaries(&rel, &toks, &mask));
        let input = FileInput { rel: &rel, toks: &toks, in_test: &mask };
        let raw = check_file(&input, &rules_for(&rel));
        let sups = collect_suppressions(&toks);
        if rel == FAILPOINT_REGISTRY {
            registry_sups = sups.clone();
            registry_sites = parse_sites(&toks);
        }
        let (kept, n) = apply_suppressions(&rel, raw, &sups);
        findings.extend(kept);
        suppressed += n;
        sups_by_file.insert(rel, sups);
    }

    // Cross-file: failpoint coverage. Registry-file suppressions apply
    // (a site can be allow()ed while its call site is being landed).
    let test_src = std::fs::read_to_string(root.join(FAILPOINT_TEST)).unwrap_or_default();
    let readme_src = std::fs::read_to_string(root.join(FAILPOINT_README)).unwrap_or_default();
    let fp = check_failpoints(&FailpointInputs {
        registry_rel: FAILPOINT_REGISTRY,
        sites: &registry_sites,
        test_rel: FAILPOINT_TEST,
        test_src: &test_src,
        readme_rel: FAILPOINT_README,
        readme_src: &readme_src,
        call_sites: &call_sites,
    });
    let (fp_kept, fp_suppressed) = apply_suppressions(FAILPOINT_REGISTRY, fp, &registry_sups);
    findings.extend(fp_kept);
    suppressed += fp_suppressed;

    // Cross-file: trace coverage. The pipeline-phase marker in DESIGN.md
    // is reconciled against the production `.span("…")` call sites.
    let design_src = std::fs::read_to_string(root.join(TRACE_DESIGN_DOC)).unwrap_or_default();
    findings.extend(check_trace_coverage(&TraceCoverageInputs {
        design_rel: TRACE_DESIGN_DOC,
        design_src: &design_src,
        span_sites: &span_sites,
    }));

    // Cross-file: the interprocedural lock analysis (lock-order,
    // blocking-while-locked, guard-across-unwind) over the whole
    // workspace's summaries, reconciled against DESIGN.md's marker.
    let (lock_kept, lock_suppressed) = check_lock_graph(&LockGraphInputs {
        summaries: &summaries,
        design_rel: TRACE_DESIGN_DOC,
        design_src: &design_src,
        sups: &sups_by_file,
        scope: Some(LOCK_SCOPE),
    });
    findings.extend(lock_kept);
    suppressed += lock_suppressed;

    findings.sort();
    let files_lexed = lex_count() - lex_before;
    Ok(Report { findings, suppressed, files: files.len(), files_lexed })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Find the workspace root: walk up from `start` looking for a
/// `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

// ------------------------------------------------------------------ fixtures

/// Outcome of one fixture case.
#[derive(Debug)]
pub struct FixtureResult {
    /// `rule_dir/case_name`.
    pub name: String,
    /// Lines the sidecar expects (`file:line: rule`).
    pub expected: Vec<String>,
    /// Lines the lint produced.
    pub actual: Vec<String>,
}

impl FixtureResult {
    /// Did actual match expected exactly?
    pub fn pass(&self) -> bool {
        self.expected == self.actual
    }
}

/// Run the fixture corpus under `dir` (`crates/lint/tests/fixtures`).
///
/// Layout: `<rule>/<case>.rs` single-file fixtures run the rule their
/// directory names (a `//@path: <workspace-rel>` first line instead
/// lints the case *as if it sat at that path*, exercising the engine's
/// path-based rule scoping — exemption narrowness is fixture-testable);
/// `failpoint_coverage/<case>/` dirs hold a synthetic `registry.rs`,
/// `code.rs`, `failpoints_test.rs`, and `readme.md`;
/// `trace_coverage/<case>/` dirs hold a synthetic `design.md` and
/// `code.rs`. Each case has a sidecar (`<case>.expected` / the dir's
/// `expected` file) listing `file:line: rule` per expected finding —
/// missing or empty sidecar means the case must be clean.
pub fn run_fixtures(dir: &Path) -> io::Result<Vec<FixtureResult>> {
    let mut out = Vec::new();
    let mut rule_dirs: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    rule_dirs.sort();
    for rd in rule_dirs.into_iter().filter(|p| p.is_dir()) {
        let rule_name = file_name(&rd);
        let mut cases: Vec<PathBuf> =
            std::fs::read_dir(&rd)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        cases.sort();
        for case in cases {
            if case.is_dir() {
                out.push(run_dir_fixture(&rule_name, &case)?);
            } else if case.extension().map(|e| e == "rs").unwrap_or(false) {
                out.push(run_file_fixture(&rule_name, &case)?);
            }
        }
    }
    Ok(out)
}

/// Map a fixture rule-directory name to the lock-analysis rule it
/// isolates, if any.
fn lock_rule_of(rule_dir: &str) -> Option<&'static str> {
    match rule_dir {
        "lock_order" => Some("lock-order"),
        "blocking_while_locked" => Some("blocking-while-locked"),
        "guard_across_unwind" => Some("guard-across-unwind"),
        _ => None,
    }
}

/// Run the lock analysis over a set of fixture files and keep only the
/// directory's rule (so a `blocking_while_locked` case without a
/// `design.md` isn't polluted by the missing-marker `lock-order`
/// finding).
fn run_lock_fixture(
    files: &[(String, String)],
    design_rel: &str,
    design_src: &str,
    rule: &'static str,
    scope: Option<&[&str]>,
) -> Vec<Finding> {
    let mut summaries: Vec<FnSummary> = Vec::new();
    let mut sups_by_file: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();
    for (rel, src) in files {
        let toks = lex(src);
        let mask = test_scope_mask(&toks);
        summaries.extend(collect_summaries(rel, &toks, &mask));
        sups_by_file.insert(rel.clone(), collect_suppressions(&toks));
    }
    let (kept, _) = check_lock_graph(&LockGraphInputs {
        summaries: &summaries,
        design_rel,
        design_src,
        sups: &sups_by_file,
        scope,
    });
    kept.into_iter().filter(|f| f.rule == rule).collect()
}

fn run_file_fixture(rule_dir: &str, case: &Path) -> io::Result<FixtureResult> {
    let fname = file_name(case);
    let src = std::fs::read_to_string(case)?;
    // The three lock rules are cross-file analyses: single-file cases
    // run them in isolation. A `//@path:` directive applies the real
    // workspace lock scope (pinning its narrowness); without one,
    // every acquisition in the fixture is tracked.
    if let Some(rule) = lock_rule_of(rule_dir) {
        let (rel, scope): (String, Option<&[&str]>) =
            match src.lines().next().and_then(|l| l.strip_prefix("//@path:")) {
                Some(p) => (p.trim().to_string(), Some(LOCK_SCOPE)),
                None => (fname.clone(), None),
            };
        // The fixture file doubles as its own "design doc": a
        // `// <!-- parinda-lint: lock-order: … -->` comment line
        // declares the order for the case.
        let files = vec![(rel.clone(), src)];
        let findings = run_lock_fixture(&files, &rel, &files[0].1, rule, scope);
        let expected = read_expected(&case.with_extension("expected"))?;
        return Ok(FixtureResult {
            name: format!("{rule_dir}/{fname}"),
            expected,
            actual: render(&findings),
        });
    }
    // `//@path: <rel>` on the first line lints the fixture as if it sat
    // at that workspace-relative path, with the rule set the engine
    // would really choose — this is how exemption *narrowness* is
    // pinned (the same clock read is clean at the exempt path and a
    // finding one file over).
    if let Some(rel) = src.lines().next().and_then(|l| l.strip_prefix("//@path:")) {
        let rel = rel.trim().to_string();
        let (findings, _) = lint_source(&rel, &src, &rules_for(&rel));
        let expected = read_expected(&case.with_extension("expected"))?;
        return Ok(FixtureResult {
            name: format!("{rule_dir}/{fname}"),
            expected,
            actual: render(&findings),
        });
    }
    // The fixture's directory selects which rule is under test, so a
    // `lock-discipline` case isn't polluted by `panic-site` findings on
    // the same `.unwrap()`. Unknown dirs (and `suppression`, which
    // needs real findings to suppress) run everything.
    let rules = match rule_dir {
        "panic_site" => {
            RuleSet { panic_site: true, nondet_iter: false, nondet_wallclock: false, lock_discipline: false }
        }
        "nondeterminism" => {
            RuleSet { panic_site: false, nondet_iter: true, nondet_wallclock: true, lock_discipline: false }
        }
        "lock_discipline" => {
            RuleSet { panic_site: false, nondet_iter: false, nondet_wallclock: false, lock_discipline: true }
        }
        _ => RuleSet::all(),
    };
    let (findings, _) = lint_source(&fname, &src, &rules);
    let actual = render(&findings);
    let expected = read_expected(&case.with_extension("expected"))?;
    Ok(FixtureResult { name: format!("{rule_dir}/{fname}"), expected, actual })
}

fn run_dir_fixture(rule_dir: &str, case: &Path) -> io::Result<FixtureResult> {
    let read = |n: &str| std::fs::read_to_string(case.join(n)).unwrap_or_default();
    // Lock-rule dir cases: every `.rs` file in the dir (sorted) is one
    // workspace file, plus an optional `design.md` with the marker —
    // this is how cross-file inversions (A locks x→y, B locks y→x via
    // a helper) are exercised.
    if let Some(rule) = lock_rule_of(rule_dir) {
        let mut rs_files: Vec<PathBuf> = std::fs::read_dir(case)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|e| e == "rs").unwrap_or(false))
            .collect();
        rs_files.sort();
        let mut files: Vec<(String, String)> = Vec::new();
        for p in &rs_files {
            files.push((file_name(p), std::fs::read_to_string(p)?));
        }
        let design_src = read("design.md");
        let findings = run_lock_fixture(&files, "design.md", &design_src, rule, None);
        let expected = read_expected(&case.join("expected"))?;
        return Ok(FixtureResult {
            name: format!("{rule_dir}/{}", file_name(case)),
            expected,
            actual: render(&findings),
        });
    }
    if rule_dir == "trace_coverage" {
        let code_src = read("code.rs");
        let toks = lex(&code_src);
        let mask = test_scope_mask(&toks);
        let span_sites = collect_span_sites("code.rs", &toks, &mask);
        let design_src = read("design.md");
        let findings = check_trace_coverage(&TraceCoverageInputs {
            design_rel: "design.md",
            design_src: &design_src,
            span_sites: &span_sites,
        });
        let expected = read_expected(&case.join("expected"))?;
        return Ok(FixtureResult {
            name: format!("{rule_dir}/{}", file_name(case)),
            expected,
            actual: render(&findings),
        });
    }
    let registry_src = read("registry.rs");
    let registry_toks = lex(&registry_src);
    let sites = parse_sites(&registry_toks);
    let code_src = read("code.rs");
    let toks = lex(&code_src);
    let mask = test_scope_mask(&toks);
    let call_sites = collect_should_fail_sites("code.rs", &toks, &mask);
    let findings = check_failpoints(&FailpointInputs {
        registry_rel: "registry.rs",
        sites: &sites,
        test_rel: "failpoints_test.rs",
        test_src: &read("failpoints_test.rs"),
        readme_rel: "readme.md",
        readme_src: &read("readme.md"),
        call_sites: &call_sites,
    });
    let expected = read_expected(&case.join("expected"))?;
    Ok(FixtureResult {
        name: format!("{rule_dir}/{}", file_name(case)),
        expected,
        actual: render(&findings),
    })
}

fn render(findings: &[Finding]) -> Vec<String> {
    findings.iter().map(|f| format!("{}:{}: {}", f.file, f.line, f.rule)).collect()
}

fn read_expected(path: &Path) -> io::Result<Vec<String>> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    Ok(std::fs::read_to_string(path)?
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect())
}

fn file_name(p: &Path) -> String {
    p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}
