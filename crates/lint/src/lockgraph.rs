//! The interprocedural lock analysis: call-graph resolution, transitive
//! propagation, and the three concurrency rules.
//!
//! From the per-function summaries ([`crate::summary`]) this module:
//!
//! 1. resolves each call target to a unique function — exact
//!    `Type::method` match for `self.method(…)`, otherwise by bare name
//!    (disambiguated by a same-file preference for plain calls, then by
//!    keeping only *relevant* candidates: functions that acquire locks,
//!    block, or cross an unwind boundary),
//! 2. resolves each acquisition to a stable lock identity — directly
//!    for `self.FIELD.lock()`, through the callee's summary for
//!    `lock`/`lock_*` poison-recovery wrappers,
//! 3. propagates transitively: `TA(f)` (which identities running `f`
//!    can acquire), `TB(f)` (a blocking site reachable from `f`), and
//!    `TU(f)` (a `catch_unwind` reachable from `f`) via memoized DFS,
//! 4. reconciles the acquired-while-holding edges against the declared
//!    order in DESIGN.md's machine-readable marker:
//!
//!    ```text
//!    <!-- parinda-lint: lock-order: Durable.journal < Wal.inner -->
//!    ```
//!
//! Three rules come out of this graph: **`lock-order`** (cycles,
//! order-violating edges, undeclared locks, stale declarations, a
//! missing marker), **`blocking-while-locked`** (an fsync/`write_all`/
//! socket-read/`sleep`/`recv`/thread-`join`/`par_*` fan-out reached —
//! possibly through calls — while a guard is live), and
//! **`guard-across-unwind`** (a guard live across a `catch_unwind`
//! boundary).
//!
//! A blocking or unwind site carrying a valid inline
//! `// parinda-lint: allow(<rule>): <reason>` is excluded from
//! transitive propagation — the WAL's group-fsync-under-`inner` is
//! *the design*, and its justified suppression must also silence the
//! callers that reach it while holding the journal lock.

use crate::findings::{Finding, Suppression};
use crate::summary::{AcqKind, CallTarget, Event, FnSummary};
use std::collections::{BTreeMap, BTreeSet};

/// Marker text the `lock-order` rule looks for in DESIGN.md. The full
/// marker is an HTML comment (invisible when rendered):
///
/// ```text
/// <!-- parinda-lint: lock-order: A.x < B.y < C.z -->
/// ```
pub const LOCK_ORDER_MARKER: &str = "parinda-lint: lock-order:";

/// Inputs for the lock analysis, gathered by the engine.
pub struct LockGraphInputs<'a> {
    /// Every production-function summary in the workspace (or fixture).
    pub summaries: &'a [FnSummary],
    /// Path of the design doc holding the lock-order marker.
    pub design_rel: &'a str,
    /// Its text (empty string = file missing).
    pub design_src: &'a str,
    /// Per-file inline suppressions (used both to absorb findings and
    /// to stop propagation past justified sites).
    pub sups: &'a BTreeMap<String, Vec<Suppression>>,
    /// Path prefixes whose direct acquisitions define *tracked*
    /// identities; `None` tracks everything (fixture mode).
    pub scope: Option<&'a [&'a str]>,
}

/// Find the lock-order marker: `(1-based line, declared identities)`.
/// The list runs from the marker text to the closing `-->`, identities
/// separated by `<`.
pub fn parse_lock_order_marker(src: &str) -> Option<(u32, Vec<String>)> {
    for (i, line) in src.lines().enumerate() {
        let Some(at) = line.find(LOCK_ORDER_MARKER) else { continue };
        let rest = &line[at + LOCK_ORDER_MARKER.len()..];
        let rest = rest.split("-->").next().unwrap_or(rest);
        let ids: Vec<String> = rest
            .split('<')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if !ids.is_empty() {
            return Some((i as u32 + 1, ids));
        }
    }
    None
}

/// A propagated witness: a rendered description of where the
/// interesting site actually is (`\`what\` in \`fn\` (file:line)`).
type Witness = String;

/// One acquired-while-holding edge with its first witness site.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: Option<String>,
}

struct Analysis<'a> {
    inp: &'a LockGraphInputs<'a>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    by_impl_name: BTreeMap<(&'a str, &'a str), usize>,
    /// Resolved identity of every acquisition, per function.
    acq_ids: Vec<Vec<Option<String>>>,
    tracked: BTreeSet<String>,
    // memo state: 0 white, 1 gray, 2 black
    mark: Vec<u8>,
    ta: Vec<BTreeMap<String, Witness>>,
    tb: Vec<Option<Witness>>,
    tu: Vec<Option<Witness>>,
}

/// Run the lock analysis. Returns `(kept_findings, n_suppressed)`;
/// inline suppressions in `inp.sups` are already applied.
pub fn check_lock_graph(inp: &LockGraphInputs<'_>) -> (Vec<Finding>, usize) {
    let n = inp.summaries.len();
    let mut a = Analysis {
        inp,
        by_name: BTreeMap::new(),
        by_impl_name: BTreeMap::new(),
        acq_ids: vec![Vec::new(); n],
        tracked: BTreeSet::new(),
        mark: vec![0; n],
        ta: vec![BTreeMap::new(); n],
        tb: vec![None; n],
        tu: vec![None; n],
    };
    for (i, s) in inp.summaries.iter().enumerate() {
        a.by_name.entry(s.name.as_str()).or_default().push(i);
        if let Some(ty) = &s.impl_type {
            a.by_impl_name.entry((ty.as_str(), s.name.as_str())).or_insert(i);
        }
    }
    a.resolve_acquisitions();
    a.collect_tracked();
    for i in 0..n {
        a.propagate(i);
    }
    a.findings()
}

impl<'a> Analysis<'a> {
    fn qual(&self, i: usize) -> String {
        let s = &self.inp.summaries[i];
        match &s.impl_type {
            Some(t) => format!("{t}::{}", s.name),
            None => s.name.clone(),
        }
    }

    /// Is a site covered by a valid inline `allow(rule)`?
    fn covered(&self, file: &str, line: u32, rule: &str) -> bool {
        self.inp
            .sups
            .get(file)
            .map(|ss| {
                ss.iter().any(|s| {
                    s.rule == rule
                        && !s.reason.is_empty()
                        && (s.line == line || s.line + 1 == line)
                })
            })
            .unwrap_or(false)
    }

    /// Resolve a call target from `caller` to a function index.
    fn resolve(&self, caller: usize, target: &CallTarget) -> Option<usize> {
        let name = target.name();
        if let CallTarget::SelfMethod(_) = target {
            if let Some(ty) = &self.inp.summaries[caller].impl_type {
                if let Some(&i) = self.by_impl_name.get(&(ty.as_str(), name)) {
                    return Some(i);
                }
            }
        }
        let cands = self.by_name.get(name)?;
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        // Same-file preference for plain calls (a module's private
        // helpers shadow same-named functions elsewhere).
        if matches!(target, CallTarget::Plain(_)) {
            let caller_file = &self.inp.summaries[caller].file;
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| &self.inp.summaries[i].file == caller_file)
                .collect();
            if same.len() == 1 {
                return Some(same[0]);
            }
        }
        // Relevance filter: keep only candidates the analysis cares
        // about (they acquire, block, or unwind). An ambiguous name
        // with exactly one relevant candidate resolves to it.
        let relevant: Vec<usize> =
            cands.iter().copied().filter(|&i| self.is_relevant(i)).collect();
        if relevant.len() == 1 {
            return Some(relevant[0]);
        }
        None
    }

    fn is_relevant(&self, i: usize) -> bool {
        let s = &self.inp.summaries[i];
        !s.acquisitions.is_empty()
            || s.events.iter().any(|e| matches!(e, Event::Blocking { .. } | Event::Unwind { .. }))
    }

    /// Resolve every acquisition's identity (wrappers through their
    /// callee's summary).
    fn resolve_acquisitions(&mut self) {
        for i in 0..self.inp.summaries.len() {
            let mut ids = Vec::new();
            for acq in &self.inp.summaries[i].acquisitions {
                let id = match &acq.kind {
                    AcqKind::Direct(id) => Some(id.clone()),
                    AcqKind::Wrapper(target) => self.resolve(i, target).and_then(|c| {
                        self.inp.summaries[c].wrapper_identity().map(String::from)
                    }),
                };
                ids.push(id);
            }
            self.acq_ids[i] = ids;
        }
    }

    /// An identity is tracked iff its *direct* acquisition site lives
    /// under a scope prefix (or scope is `None`).
    fn collect_tracked(&mut self) {
        for s in self.inp.summaries.iter() {
            let in_scope = match self.inp.scope {
                None => true,
                Some(prefixes) => prefixes.iter().any(|p| s.file.starts_with(p)),
            };
            if !in_scope {
                continue;
            }
            for acq in &s.acquisitions {
                if let AcqKind::Direct(id) = &acq.kind {
                    self.tracked.insert(id.clone());
                }
            }
        }
    }

    /// Memoized DFS computing TA/TB/TU for function `i`.
    fn propagate(&mut self, i: usize) {
        if self.mark[i] != 0 {
            return;
        }
        self.mark[i] = 1;
        let s = &self.inp.summaries[i];
        let file = s.file.clone();
        let qual = self.qual(i);
        let events = s.events.clone();
        for e in &events {
            match e {
                Event::Acquire { acq, .. } => {
                    if let Some(id) = self.acq_ids[i][*acq].clone() {
                        let line = self.inp.summaries[i].acquisitions[*acq].line;
                        let _ = line;
                        self.ta[i].entry(id).or_insert_with(|| format!("acquired in `{qual}`"));
                    }
                }
                Event::Blocking { what, line, .. } => {
                    if self.tb[i].is_none()
                        && !self.covered(&file, *line, "blocking-while-locked")
                    {
                        self.tb[i] = Some(format!("`{what}` in `{qual}` ({file}:{line})"));
                    }
                }
                Event::Unwind { line, .. } => {
                    if self.tu[i].is_none() && !self.covered(&file, *line, "guard-across-unwind")
                    {
                        self.tu[i] = Some(format!("`catch_unwind` in `{qual}` ({file}:{line})"));
                    }
                }
                Event::Call { target, .. } => {
                    if let Some(c) = self.resolve(i, target) {
                        if self.mark[c] == 1 {
                            continue; // recursion cycle: fixpoint not needed for our rules
                        }
                        self.propagate(c);
                        let callee_ta: Vec<(String, Witness)> = self.ta[c]
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect();
                        for (id, w) in callee_ta {
                            self.ta[i].entry(id).or_insert(w);
                        }
                        if self.tb[i].is_none() {
                            self.tb[i] = self.tb[c].clone();
                        }
                        if self.tu[i].is_none() {
                            self.tu[i] = self.tu[c].clone();
                        }
                    }
                }
            }
        }
        // Wrapper acquisitions also count toward TA even when the
        // wrapper resolution already provided the identity above.
        self.mark[i] = 2;
    }

    /// Identities the function's `held` set resolves to (tracked only).
    fn held_ids(&self, i: usize, held: &[usize]) -> Vec<String> {
        let mut out: Vec<String> = held
            .iter()
            .filter_map(|&a| self.acq_ids[i][a].clone())
            .filter(|id| self.tracked.contains(id))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Generate all findings and absorb suppressions.
    fn findings(&self) -> (Vec<Finding>, usize) {
        let mut raw: Vec<Finding> = Vec::new();
        let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
        let push = |raw: &mut Vec<Finding>,
                        seen: &mut BTreeSet<(String, u32, &'static str)>,
                        file: &str,
                        line: u32,
                        rule: &'static str,
                        message: String| {
            if seen.insert((file.to_string(), line, rule)) {
                raw.push(Finding { file: file.to_string(), line, rule, message });
            }
        };

        // Pass 1: edges + per-site blocking/unwind findings.
        let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
        let mut first_acq: BTreeMap<String, (String, u32)> = BTreeMap::new();
        for (i, s) in self.inp.summaries.iter().enumerate() {
            for e in &s.events {
                match e {
                    Event::Acquire { acq, held } => {
                        let Some(id) = &self.acq_ids[i][*acq] else { continue };
                        let line = s.acquisitions[*acq].line;
                        if self.tracked.contains(id) {
                            first_acq
                                .entry(id.clone())
                                .or_insert_with(|| (s.file.clone(), line));
                            for h in self.held_ids(i, held) {
                                edges.entry((h.clone(), id.clone())).or_insert(Edge {
                                    from: h,
                                    to: id.clone(),
                                    file: s.file.clone(),
                                    line,
                                    via: None,
                                });
                            }
                        }
                    }
                    Event::Call { target, line, held } => {
                        let held_ids = self.held_ids(i, held);
                        let Some(c) = self.resolve(i, target) else { continue };
                        for h in &held_ids {
                            for (id, _) in self.ta[c].iter() {
                                if !self.tracked.contains(id) {
                                    continue;
                                }
                                edges.entry((h.clone(), id.clone())).or_insert(Edge {
                                    from: h.clone(),
                                    to: id.clone(),
                                    file: s.file.clone(),
                                    line: *line,
                                    via: Some(self.qual(c)),
                                });
                            }
                        }
                        if held_ids.is_empty() {
                            continue;
                        }
                        let list = backtick_list(&held_ids);
                        if let Some(w) = &self.tb[c] {
                            push(
                                &mut raw,
                                &mut seen,
                                &s.file,
                                *line,
                                "blocking-while-locked",
                                format!(
                                    "call to `{}` reaches blocking {} while holding {list} — narrow the guard or move the blocking work out of the critical section",
                                    self.qual(c),
                                    w
                                ),
                            );
                        }
                        if let Some(w) = &self.tu[c] {
                            push(
                                &mut raw,
                                &mut seen,
                                &s.file,
                                *line,
                                "guard-across-unwind",
                                format!(
                                    "call to `{}` reaches {} while holding {list} — a panic there poisons the held lock; if poison-by-design, say so with an inline allow",
                                    self.qual(c),
                                    w
                                ),
                            );
                        }
                    }
                    Event::Blocking { what, line, held } => {
                        let held_ids = self.held_ids(i, held);
                        if held_ids.is_empty() {
                            continue;
                        }
                        push(
                            &mut raw,
                            &mut seen,
                            &s.file,
                            *line,
                            "blocking-while-locked",
                            format!(
                                "blocking `{what}` while holding {} — narrow the guard or move the blocking work out of the critical section",
                                backtick_list(&held_ids)
                            ),
                        );
                    }
                    Event::Unwind { line, held } => {
                        let held_ids = self.held_ids(i, held);
                        if held_ids.is_empty() {
                            continue;
                        }
                        push(
                            &mut raw,
                            &mut seen,
                            &s.file,
                            *line,
                            "guard-across-unwind",
                            format!(
                                "guard on {} is live across this `catch_unwind` — a panic inside poisons the lock; if poison-by-design, say so with an inline allow",
                                backtick_list(&held_ids)
                            ),
                        );
                    }
                }
            }
        }

        // Pass 2: reconcile against the declared order.
        let acquired: BTreeSet<&String> = first_acq.keys().collect();
        let marker = parse_lock_order_marker(self.inp.design_src);
        match &marker {
            None => {
                if !acquired.is_empty() {
                    push(
                        &mut raw,
                        &mut seen,
                        self.inp.design_rel,
                        1,
                        "lock-order",
                        format!(
                            "no `<!-- {LOCK_ORDER_MARKER} … -->` marker found, but {} tracked lock(s) exist ({}) — declare the canonical order",
                            acquired.len(),
                            acquired.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
                        ),
                    );
                }
            }
            Some((mline, declared)) => {
                let mut pos: BTreeMap<&str, usize> = BTreeMap::new();
                for (p, id) in declared.iter().enumerate() {
                    if pos.insert(id.as_str(), p).is_some() {
                        push(
                            &mut raw,
                            &mut seen,
                            self.inp.design_rel,
                            *mline,
                            "lock-order",
                            format!("duplicate lock `{id}` in the lock-order marker"),
                        );
                    }
                }
                for id in &acquired {
                    if !pos.contains_key(id.as_str()) {
                        let (f, l) = &first_acq[id.as_str()];
                        push(
                            &mut raw,
                            &mut seen,
                            f,
                            *l,
                            "lock-order",
                            format!(
                                "lock `{id}` is acquired here but not declared in the {} lock-order marker",
                                self.inp.design_rel
                            ),
                        );
                    }
                }
                for id in declared {
                    if !acquired.contains(id) {
                        push(
                            &mut raw,
                            &mut seen,
                            self.inp.design_rel,
                            *mline,
                            "lock-order",
                            format!(
                                "declared lock `{id}` is never acquired anywhere — stale declaration, remove it"
                            ),
                        );
                    }
                }
                for e in edges.values() {
                    let (Some(&pf), Some(&pt)) =
                        (pos.get(e.from.as_str()), pos.get(e.to.as_str()))
                    else {
                        continue; // undeclared endpoints are reported above
                    };
                    if pf >= pt {
                        let via = e
                            .via
                            .as_ref()
                            .map(|v| format!(" (via `{v}`)"))
                            .unwrap_or_default();
                        let msg = if e.from == e.to {
                            format!(
                                "`{}` is re-acquired{via} while already held — self-deadlock",
                                e.to
                            )
                        } else {
                            format!(
                                "`{}` is acquired{via} while `{}` is held, violating the declared order `{}` < `{}` ({} marker)",
                                e.to, e.from, e.to, e.from, self.inp.design_rel
                            )
                        };
                        push(&mut raw, &mut seen, &e.file, e.line, "lock-order", msg);
                    }
                }
            }
        }

        // Cycles in the edge graph (reported even without a marker —
        // a cycle deadlocks regardless of what the docs declare).
        for cycle in find_cycles(&edges) {
            let first = &edges[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())];
            let path = cycle
                .iter()
                .chain(cycle.first())
                .map(|s| format!("`{s}`"))
                .collect::<Vec<_>>()
                .join(" → ");
            push(
                &mut raw,
                &mut seen,
                &first.file,
                first.line,
                "lock-order",
                format!("lock-acquisition cycle {path} — two sessions can deadlock here"),
            );
        }

        // Absorb inline suppressions.
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for f in raw {
            if self.covered(&f.file, f.line, f.rule) {
                suppressed += 1;
            } else {
                kept.push(f);
            }
        }
        kept.sort();
        (kept, suppressed)
    }
}

fn backtick_list(ids: &[String]) -> String {
    ids.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", ")
}

/// Find simple cycles in the edge graph. Each cycle is reported once,
/// as the node list in DFS discovery order, deduplicated by node set.
fn find_cycles(edges: &BTreeMap<(String, String), Edge>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();

    fn dfs<'g>(
        node: &'g str,
        adj: &BTreeMap<&'g str, Vec<&'g str>>,
        color: &mut BTreeMap<&'g str, u8>,
        stack: &mut Vec<&'g str>,
        cycles: &mut Vec<Vec<String>>,
        seen_sets: &mut BTreeSet<Vec<String>>,
    ) {
        color.insert(node, 1);
        stack.push(node);
        for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
            match color.get(next).copied().unwrap_or(0) {
                0 => dfs(next, adj, color, stack, cycles, seen_sets),
                1 => {
                    let at = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let cyc: Vec<String> = stack[at..].iter().map(|s| s.to_string()).collect();
                    let mut key = cyc.clone();
                    key.sort();
                    if seen_sets.insert(key) {
                        cycles.push(cyc);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(node, 2);
    }

    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            dfs(n, &adj, &mut color, &mut stack, &mut cycles, &mut seen_sets);
        }
    }
    cycles
}
