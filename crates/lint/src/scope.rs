//! Per-file test-scope tracking: which tokens live inside
//! `#[cfg(test)]` items or `mod tests { … }` blocks.
//!
//! This is the piece the old awk lint got wrong: its `in_tests` flag
//! latched on the first `#[cfg(test)]` and never reset, so everything
//! *below* a test module in the same file — including production code —
//! went unchecked. Here a test scope is entered at the item the
//! attribute annotates and exited at that item's closing brace (or
//! terminating `;` for brace-less items), tracked by brace depth, so
//! code after a test module is linted again.

use crate::lexer::{Tok, TokKind};

/// For each token of a lexed file, `true` iff the token is inside a
/// test-only scope:
///
/// * an item annotated `#[cfg(test)]` (including `#[cfg(all(test, …))]`
///   — any `test` atom not under `not(…)`),
/// * an item annotated `#[test]`,
/// * a `mod tests { … }` / `mod *_tests { … }` block even without the
///   attribute.
///
/// Scopes nest; the attribute itself and the item header count as test
/// tokens too (nobody lints an attribute, but suppress-comment scanning
/// wants the whole span).
pub fn test_scope_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    // Brace depths at which an active test scope's body opened; the
    // scope dies when depth returns to the recorded value.
    let mut scopes: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    // A test attribute fired and we are waiting for the item it
    // annotates to open a body (`{`) or end (`;`).
    let mut pending = false;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_trivia() {
            mask[i] = !scopes.is_empty();
            i += 1;
            continue;
        }

        // Attribute? Consume the whole `#[…]` group as one unit.
        if t.is_punct('#') && next_is(toks, i + 1, |t| t.is_punct('[')) {
            let (end, is_test_attr) = scan_attribute(toks, i);
            let in_test = !scopes.is_empty() || is_test_attr || pending;
            for m in &mut mask[i..end] {
                *m = in_test;
            }
            if is_test_attr {
                pending = true;
            }
            i = end;
            continue;
        }

        // `mod tests {` / `mod foo_tests {` without an attribute.
        if t.is_ident("mod") && !pending {
            if let Some(name) = ident_at(toks, i + 1) {
                if (name == "tests" || name.ends_with("_tests"))
                    && next_is(toks, skip_trivia(toks, i + 2), |t| t.is_punct('{'))
                {
                    pending = true;
                }
            }
        }

        mask[i] = !scopes.is_empty() || pending;

        match t.kind {
            TokKind::Punct if t.is_punct('{') => {
                depth += 1;
                if pending {
                    // The annotated item's body: test scope until this
                    // brace closes. (`use a::{b, c};` never gets here —
                    // `use` items are ended at `;` below before their
                    // brace, because we check the leading ident.)
                    scopes.push(depth - 1);
                    pending = false;
                }
            }
            TokKind::Punct if t.is_punct('}') => {
                depth = depth.saturating_sub(1);
                while scopes.last().copied() == Some(depth) {
                    scopes.pop();
                }
            }
            TokKind::Punct if t.is_punct(';') => {
                // Brace-less annotated item (`#[cfg(test)] use …;`,
                // `… type X = Y;`, `… mod tests;`) ends here.
                pending = false;
            }
            TokKind::Ident if pending && t.is_ident("use") => {
                // `use` bodies contain `{…}` that is not an item body;
                // mark until the `;` without opening a scope.
                let mut j = i;
                while j < toks.len() && !toks[j].is_punct(';') {
                    mask[j] = true;
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth = depth.saturating_sub(1);
                    }
                    j += 1;
                }
                if j < toks.len() {
                    mask[j] = true;
                }
                pending = false;
                i = j + 1;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    mask
}

/// Scan the attribute starting at `#` (index `i`); return the index one
/// past its closing `]` and whether it marks test-only code.
///
/// Test-marking attributes: `#[test]`, and `#[cfg(…)]` whose argument
/// contains the atom `test` at a position not nested under `not(…)`.
/// `#[cfg(not(test))]` is production code and must NOT match.
fn scan_attribute(toks: &[Tok<'_>], i: usize) -> (usize, bool) {
    let mut j = i + 1; // at '['
    debug_assert!(toks[j].is_punct('['));
    let mut bracket = 0usize;
    let start = j;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            bracket += 1;
        } else if toks[j].is_punct(']') {
            bracket -= 1;
            if bracket == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    let body: Vec<&Tok<'_>> = toks[start..j].iter().filter(|t| !t.is_trivia()).collect();
    // body = [ '[', …, ']' ]
    let is_test = match body.get(1) {
        Some(t) if t.is_ident("test") && body.len() == 3 => true,
        Some(t) if t.is_ident("cfg") => cfg_contains_live_test(&body[2..]),
        _ => false,
    };
    (j, is_test)
}

/// Does a `cfg` argument list contain `test` outside any `not(…)`?
fn cfg_contains_live_test(toks: &[&Tok<'_>]) -> bool {
    let mut depth = 0usize;
    // Paren depths at which a `not(` group opened.
    let mut not_depths: Vec<usize> = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        let t = toks[k];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            while not_depths.last().copied() == Some(depth) {
                not_depths.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.is_ident("not") && toks.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
            not_depths.push(depth + 1);
        } else if t.is_ident("test") && not_depths.is_empty() {
            return true;
        }
        k += 1;
    }
    false
}

fn next_is(toks: &[Tok<'_>], i: usize, pred: impl Fn(&Tok<'_>) -> bool) -> bool {
    toks.get(i).map(|t| pred(t)).unwrap_or(false)
}

fn ident_at<'a>(toks: &[Tok<'a>], i: usize) -> Option<&'a str> {
    let i = skip_trivia(toks, i);
    toks.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text)
}

fn skip_trivia(toks: &[Tok<'_>], mut i: usize) -> usize {
    while i < toks.len() && toks[i].is_trivia() {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Which idents named `probe` are in test scope?
    fn probe_mask(src: &str) -> Vec<bool> {
        let toks = lex(src);
        let mask = test_scope_mask(&toks);
        toks.iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("probe"))
            .map(|(_, &m)| m)
            .collect()
    }

    #[test]
    fn code_after_test_module_is_production_again() {
        // The awk latch bug: `probe` after the tests module must be
        // back in production scope.
        let src = r#"
            fn before() { probe(); }
            #[cfg(test)]
            mod tests {
                fn inside() { probe(); }
            }
            fn after() { probe(); }
        "#;
        assert_eq!(probe_mask(src), vec![false, true, false]);
    }

    #[test]
    fn unattributed_mod_tests_counts() {
        let src = "mod tests { fn f() { probe(); } } fn g() { probe(); }";
        assert_eq!(probe_mask(src), vec![true, false]);
    }

    #[test]
    fn suffix_tests_module_counts() {
        let src = "#[cfg(test)] mod sampled_tests { fn f() { probe(); } } fn g() { probe(); }";
        assert_eq!(probe_mask(src), vec![true, false]);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))] fn f() { probe(); }";
        assert_eq!(probe_mask(src), vec![false]);
    }

    #[test]
    fn cfg_all_test_is_test() {
        let src = "#[cfg(all(test, feature = \"x\"))] fn f() { probe(); }";
        assert_eq!(probe_mask(src), vec![true]);
    }

    #[test]
    fn test_fn_attribute() {
        let src = "#[test] fn t() { probe(); } fn g() { probe(); }";
        assert_eq!(probe_mask(src), vec![true, false]);
    }

    #[test]
    fn braceless_test_item_ends_at_semi() {
        let src = "#[cfg(test)] use helpers::{probe1, probe2}; fn g() { probe(); }";
        assert_eq!(probe_mask(src), vec![false]);
        // …and the use item's inner braces didn't corrupt depth: a
        // later nested module still exits correctly.
        let src2 = "#[cfg(test)] use h::{a, b};\nmod tests { fn f() { probe(); } }\nfn g() { probe(); }";
        assert_eq!(probe_mask(src2), vec![true, false]);
    }

    #[test]
    fn nested_test_scopes() {
        let src = r#"
            mod outer {
                #[cfg(test)]
                mod tests {
                    mod inner { fn f() { probe(); } }
                }
                fn prod() { probe(); }
            }
        "#;
        assert_eq!(probe_mask(src), vec![true, false]);
    }

    #[test]
    fn attr_in_string_does_not_latch() {
        let src = "fn f() { let s = \"#[cfg(test)]\"; probe(); }";
        assert_eq!(probe_mask(src), vec![false]);
    }

    #[test]
    fn cfg_test_struct_then_code() {
        let src = "#[cfg(test)] struct Helper { x: u32 } fn g() { probe(); }";
        assert_eq!(probe_mask(src), vec![false]);
    }
}
