//! `parinda-lint` driver.
//!
//! ```text
//! parinda-lint --workspace            lint the whole workspace (default)
//! parinda-lint --fixtures             run the fixture corpus
//! parinda-lint --root <dir> …         explicit workspace root
//! parinda-lint --json <path>          also write findings as JSON (parinda-lint/v1)
//! parinda-lint --timing               print wall time and lex stats to stderr
//! parinda-lint --list-rules           print rule names and scopes
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or fixture mismatches), 2 usage/IO
//! errors.

use parinda_lint::{engine, findings::RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut mode_fixtures = false;
    let mut json_out: Option<PathBuf> = None;
    let mut timing = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--fixtures" => mode_fixtures = true,
            "--timing" => timing = true,
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json needs an output path"),
            },
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage("--root needs a directory"),
            },
            "--list-rules" => {
                for r in RULE_NAMES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "parinda-lint: PARINDA contract lints (panic-site, nondeterminism, \
                     lock-discipline, failpoint-coverage, trace-coverage, lock-order, \
                     blocking-while-locked, guard-across-unwind)\n\
                     usage: parinda-lint [--workspace] [--fixtures] [--root <dir>] \
                     [--json <path>] [--timing] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("parinda-lint: no workspace root found (looked for Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    if mode_fixtures {
        return run_fixtures(&root);
    }

    // parinda-lint: allow(nondeterminism): --timing measures the lint's own wall clock; output goes to stderr only
    let t0 = timing.then(std::time::Instant::now);
    match engine::lint_workspace(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            if let Some(path) = &json_out {
                if let Err(e) = std::fs::write(path, report_json(&report)) {
                    eprintln!("parinda-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            eprintln!(
                "parinda-lint: {} finding(s), {} suppressed, {} file(s) scanned, {} lexed",
                report.findings.len(),
                report.suppressed,
                report.files,
                report.files_lexed
            );
            if let Some(t0) = t0 {
                eprintln!(
                    "parinda-lint: --timing: {:.1} ms total, {} lexer pass(es) over {} file(s) ({} pass per file)",
                    t0.elapsed().as_secs_f64() * 1e3,
                    report.files_lexed,
                    report.files,
                    if report.files_lexed == report.files { "exactly one" } else { "MORE THAN one" }
                );
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("parinda-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Render a report as `parinda-lint/v1` JSON (hand-rolled — the lint
/// is std-only by design).
fn report_json(report: &engine::Report) -> String {
    let mut out = String::from("{\n  \"schema\": \"parinda-lint/v1\",\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"stats\": {{\"files\": {}, \"files_lexed\": {}, \"findings\": {}, \"suppressed\": {}}}\n}}\n",
        report.files,
        report.files_lexed,
        report.findings.len(),
        report.suppressed
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn run_fixtures(root: &std::path::Path) -> ExitCode {
    let dir = root.join("crates/lint/tests/fixtures");
    match engine::run_fixtures(&dir) {
        Ok(results) => {
            let mut failed = 0usize;
            for r in &results {
                if r.pass() {
                    println!("ok   {}", r.name);
                } else {
                    failed += 1;
                    println!("FAIL {}", r.name);
                    for e in &r.expected {
                        if !r.actual.contains(e) {
                            println!("  missing : {e}");
                        }
                    }
                    for a in &r.actual {
                        if !r.expected.contains(a) {
                            println!("  spurious: {a}");
                        }
                    }
                }
            }
            eprintln!("parinda-lint --fixtures: {}/{} passed", results.len() - failed, results.len());
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("parinda-lint: cannot read fixtures at {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}

fn find_root() -> Option<PathBuf> {
    if let Ok(cwd) = std::env::current_dir() {
        if let Some(r) = engine::find_workspace_root(&cwd) {
            return Some(r);
        }
    }
    // Fallback when invoked from elsewhere: this binary's own manifest
    // dir is crates/lint, two levels below the root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    engine::find_workspace_root(&manifest)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("parinda-lint: {msg} (try --help)");
    ExitCode::from(2)
}
