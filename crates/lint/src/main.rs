//! `parinda-lint` driver.
//!
//! ```text
//! parinda-lint --workspace            lint the whole workspace (default)
//! parinda-lint --fixtures             run the fixture corpus
//! parinda-lint --root <dir> …         explicit workspace root
//! parinda-lint --list-rules           print rule names and scopes
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or fixture mismatches), 2 usage/IO
//! errors.

use parinda_lint::{engine, findings::RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut mode_fixtures = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--fixtures" => mode_fixtures = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage("--root needs a directory"),
            },
            "--list-rules" => {
                for r in RULE_NAMES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "parinda-lint: PARINDA contract lints (panic-site, nondeterminism, \
                     lock-discipline, failpoint-coverage, trace-coverage)\n\
                     usage: parinda-lint [--workspace] [--fixtures] [--root <dir>] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("parinda-lint: no workspace root found (looked for Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    if mode_fixtures {
        return run_fixtures(&root);
    }

    match engine::lint_workspace(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            eprintln!(
                "parinda-lint: {} finding(s), {} suppressed, {} file(s) scanned",
                report.findings.len(),
                report.suppressed,
                report.files
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("parinda-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_fixtures(root: &std::path::Path) -> ExitCode {
    let dir = root.join("crates/lint/tests/fixtures");
    match engine::run_fixtures(&dir) {
        Ok(results) => {
            let mut failed = 0usize;
            for r in &results {
                if r.pass() {
                    println!("ok   {}", r.name);
                } else {
                    failed += 1;
                    println!("FAIL {}", r.name);
                    for e in &r.expected {
                        if !r.actual.contains(e) {
                            println!("  missing : {e}");
                        }
                    }
                    for a in &r.actual {
                        if !r.expected.contains(a) {
                            println!("  spurious: {a}");
                        }
                    }
                }
            }
            eprintln!("parinda-lint --fixtures: {}/{} passed", results.len() - failed, results.len());
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("parinda-lint: cannot read fixtures at {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}

fn find_root() -> Option<PathBuf> {
    if let Ok(cwd) = std::env::current_dir() {
        if let Some(r) = engine::find_workspace_root(&cwd) {
            return Some(r);
        }
    }
    // Fallback when invoked from elsewhere: this binary's own manifest
    // dir is crates/lint, two levels below the root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    engine::find_workspace_root(&manifest)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("parinda-lint: {msg} (try --help)");
    ExitCode::from(2)
}
