//! A small Rust lexer: just enough token structure for line-accurate
//! pattern rules that cannot be fooled by comments or string literals.
//!
//! The lexer understands the trivia that defeats regex/awk lints:
//! line comments, nested block comments, doc comments, string literals
//! (including escapes), raw strings with arbitrary `#` fences, byte
//! strings, char literals vs lifetimes, and raw identifiers. Everything
//! else is an identifier, a number, or a one-byte punctuation token.
//!
//! It is deliberately *not* a full Rust lexer (no float-suffix
//! splitting, no shebang handling): the rules in [`crate::rules`] only
//! need identifier/punctuation sequences with correct line numbers and
//! correct literal/comment boundaries.

/// Token classes the rules dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers `r#ident` are reported
    /// with the `r#` stripped so rules match on the plain name).
    Ident,
    /// `"…"` or `b"…"` string literal, escapes resolved enough to find
    /// the closing quote. `text` includes the quotes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` raw (byte) string literal.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` char/byte literal.
    Char,
    /// `'label` lifetime or loop label.
    Lifetime,
    /// Numeric literal (integers, floats, hex/oct/bin, `_` separators).
    Num,
    /// `// …` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` comment with nesting, including `/** … */` docs.
    BlockComment,
    /// Any other single byte: `{ } ( ) [ ] < > . , ; : ! # & = …`
    Punct,
}

/// One token. `text` borrows from the source; `line` is 1-based and
/// refers to the line the token *starts* on.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (comments/strings include their delimiters).
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl<'a> Tok<'a> {
    /// Is this token the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this token the punctuation byte `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Comment or not — rules skip trivia when matching sequences.
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

std::thread_local! {
    // How many times `lex` ran on this thread — the single-pass
    // contract (`--workspace` lexes each file exactly once, all rules
    // sharing the token stream) is asserted against this counter.
    // Thread-local so parallel test binaries cannot race it.
    static LEX_CALLS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of [`lex`] invocations on the current thread.
pub fn lex_count() -> usize {
    LEX_CALLS.with(|c| c.get())
}

/// Tokenize `src`. Never fails: unterminated literals/comments simply
/// extend to end of input (the lint runs on code that already compiles,
/// so this only matters for fixture robustness).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    LEX_CALLS.with(|c| c.set(c.get() + 1));
    Lexer { src: src.as_bytes(), pos: 0, line: 1, full: src }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    full: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' => self.maybe_raw_or_byte(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    self.pos += 1;
                    TokKind::Punct
                }
            };
            let mut text = &self.full[start..self.pos];
            if kind == TokKind::Ident {
                // raw identifiers match rules by their plain name
                text = text.strip_prefix("r#").unwrap_or(text);
            }
            out.push(Tok { kind, text, line });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump_counting_lines(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) -> TokKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.pos += 2; // consume /*
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_counting_lines();
            }
        }
        TokKind::BlockComment
    }

    /// Cursor is on the opening `"`.
    fn string(&mut self) -> TokKind {
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1; // the backslash …
                    if self.pos < self.src.len() {
                        self.bump_counting_lines(); // … and whatever it escapes
                    }
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump_counting_lines(),
            }
        }
        TokKind::Str
    }

    /// Cursor is on the `"` after `r##…`; `hashes` is the fence width.
    fn raw_string(&mut self, hashes: usize) -> TokKind {
        self.pos += 1;
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' && self.fence_follows(hashes) {
                self.pos += 1 + hashes;
                break;
            }
            self.bump_counting_lines();
        }
        TokKind::RawStr
    }

    fn fence_follows(&self, hashes: usize) -> bool {
        (1..=hashes).all(|i| self.peek(i) == Some(b'#'))
    }

    /// `r` → raw string `r"`/`r#"` or raw ident `r#ident` or plain ident.
    /// `b` → byte string `b"`, raw byte string `br#"`, byte char `b'`,
    /// or plain ident.
    fn maybe_raw_or_byte(&mut self) -> TokKind {
        let b0 = self.src[self.pos];
        // b'x'
        if b0 == b'b' && self.peek(1) == Some(b'\'') {
            self.pos += 1;
            return self.char_literal();
        }
        // b"…"
        if b0 == b'b' && self.peek(1) == Some(b'"') {
            self.pos += 1;
            return self.string();
        }
        // r"…" | br"…" | r#…" | br#…" | r#ident
        let after_prefix = if b0 == b'b' && self.peek(1) == Some(b'r') { 2 } else { 1 };
        let mut k = after_prefix;
        while self.peek(k) == Some(b'#') {
            k += 1;
        }
        let hashes = k - after_prefix;
        if self.peek(k) == Some(b'"') && (b0 == b'r' || after_prefix == 2) {
            self.pos += k;
            return self.raw_string(hashes);
        }
        if b0 == b'r' && hashes == 1 && self.peek(k).map(is_ident_start).unwrap_or(false) {
            // raw identifier: skip `r#`, lex the name
            self.pos += 2;
            return self.ident();
        }
        self.ident()
    }

    /// Cursor on `'`: lifetime (`'a`) or char literal (`'a'`, `'\''`).
    fn char_or_lifetime(&mut self) -> TokKind {
        // Lifetime iff an ident follows and is NOT closed by a quote.
        if self.peek(1).map(is_ident_start).unwrap_or(false) {
            let mut k = 2;
            while self.peek(k).map(is_ident_continue).unwrap_or(false) {
                k += 1;
            }
            if self.peek(k) != Some(b'\'') {
                self.pos += k;
                return TokKind::Lifetime;
            }
        }
        self.char_literal()
    }

    /// Cursor on the opening `'` of a char literal.
    fn char_literal(&mut self) -> TokKind {
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.src.len() {
                        self.pos += 1;
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // malformed; don't eat the file
                _ => self.pos += 1,
            }
        }
        TokKind::Char
    }

    fn number(&mut self) -> TokKind {
        let mut seen_dot = false;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' && !seen_dot && self.peek(1).map(|n| n.is_ascii_digit()).unwrap_or(false) {
                // 1.5 but not 0..n (range) and not 1.method()
                seen_dot = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        TokKind::Num
    }

    fn ident(&mut self) -> TokKind {
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        TokKind::Ident
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("foo.unwrap()");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "foo"),
                (TokKind::Punct, "."),
                (TokKind::Ident, "unwrap"),
                (TokKind::Punct, "("),
                (TokKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn comments_are_single_tokens() {
        let t = kinds("a // x.unwrap()\nb /* p /* nested */ q */ c");
        let idents: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, s)| *s).collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert!(t.iter().any(|(k, _)| *k == TokKind::LineComment));
        assert!(t.iter().any(|(k, s)| *k == TokKind::BlockComment && s.contains("nested")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "x.unwrap() // not a comment"; y"#);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s.contains("unwrap")));
        let idents: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, s)| *s).collect();
        assert_eq!(idents, vec!["let", "s", "y"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "r##\"panic!(\"inner \"# quote\")\"## z";
        let t = kinds(src);
        assert_eq!(t[0].0, TokKind::RawStr);
        assert!(t[0].1.ends_with("\"##"));
        assert_eq!(t[1], (TokKind::Ident, "z"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let t = kinds("b\"bytes\" br#\"raw bytes\"# b'x' ok");
        assert_eq!(t[0].0, TokKind::Str);
        assert_eq!(t[1].0, TokKind::RawStr);
        assert_eq!(t[2].0, TokKind::Char);
        assert_eq!(t[3], (TokKind::Ident, "ok"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("&'a str; '\\n' 'x' 'static");
        assert_eq!(t[1].0, TokKind::Lifetime);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && *s == "'\\n'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && *s == "'x'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && *s == "'static"));
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let t = kinds("r#type r#match");
        // raw-ident prefix stripped so rules match the plain name
        assert_eq!(t[0].1, "type");
        assert_eq!(t[1].1, "match");
    }

    #[test]
    fn line_numbers_cross_multiline_tokens() {
        let src = "a\n/* two\nlines */ b\n\"str\nlit\" c";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("c"), Some(5));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let t = kinds("0..10 1.5 2.pow");
        assert_eq!(t[0], (TokKind::Num, "0"));
        assert_eq!(t[1], (TokKind::Punct, "."));
        assert_eq!(t[2], (TokKind::Punct, "."));
        assert_eq!(t[3], (TokKind::Num, "10"));
        assert_eq!(t[4], (TokKind::Num, "1.5"));
        assert_eq!(t[5], (TokKind::Num, "2"));
        assert_eq!(t[6], (TokKind::Punct, "."));
        assert_eq!(t[7], (TokKind::Ident, "pow"));
    }
}
