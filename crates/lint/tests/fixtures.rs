//! Drives the ui-test-style fixture corpus under `tests/fixtures/`:
//! every `.rs` case (or `failpoint_coverage` case directory) is linted
//! and its findings compared against the expected-findings sidecar.
//! `cargo run -p parinda-lint -- --fixtures` runs the same corpus from
//! the command line.

use parinda_lint::run_fixtures;
use std::path::Path;

#[test]
fn fixture_corpus_is_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let results = run_fixtures(&dir).expect("fixture corpus readable");
    // Guard against an empty/misplaced corpus silently passing.
    assert!(results.len() >= 37, "expected the full corpus, found {} cases", results.len());

    let mut failures = Vec::new();
    for r in &results {
        if !r.pass() {
            failures.push(format!(
                "{}:\n  expected: {:?}\n  actual:   {:?}",
                r.name, r.expected, r.actual
            ));
        }
    }
    assert!(failures.is_empty(), "fixture mismatches:\n{}", failures.join("\n"));
}

#[test]
fn corpus_has_positive_and_negative_cases_per_rule() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let results = run_fixtures(&dir).expect("fixture corpus readable");
    for rule in [
        "panic_site",
        "nondeterminism",
        "lock_discipline",
        "suppression",
        "failpoint_coverage",
        "trace_coverage",
    ] {
        let of_rule: Vec<_> = results.iter().filter(|r| r.name.starts_with(rule)).collect();
        assert!(
            of_rule.iter().any(|r| !r.expected.is_empty()),
            "rule {rule} has no positive fixture"
        );
        assert!(
            of_rule.iter().any(|r| r.expected.is_empty()),
            "rule {rule} has no negative fixture"
        );
    }
    // The interprocedural lock rules carry a deeper corpus: at least
    // two positive and two negative cases each (cross-file inversion,
    // wrapper resolution, guard-dropped false-positive, scope
    // narrowness, …).
    for rule in ["lock_order", "blocking_while_locked", "guard_across_unwind"] {
        let of_rule: Vec<_> = results.iter().filter(|r| r.name.starts_with(rule)).collect();
        assert!(
            of_rule.iter().filter(|r| !r.expected.is_empty()).count() >= 2,
            "rule {rule} needs at least two positive fixtures"
        );
        assert!(
            of_rule.iter().filter(|r| r.expected.is_empty()).count() >= 2,
            "rule {rule} needs at least two negative fixtures"
        );
    }
}

#[test]
fn workspace_pass_lexes_each_file_exactly_once() {
    // All eight rules plus the interprocedural summary extraction
    // share one token stream per file: a full `--workspace` run must
    // invoke the lexer exactly `files` times. A second lex of any file
    // (e.g. a rule re-reading the failpoint registry) breaks this.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf();
    let report = parinda_lint::engine::lint_workspace(&root).expect("workspace lintable");
    assert!(report.files > 0, "workspace walk found no files");
    assert_eq!(
        report.files_lexed, report.files,
        "expected exactly one lexer pass per file ({} files, {} lexer calls)",
        report.files, report.files_lexed
    );
}

#[test]
fn latch_regression_fixture_is_present_and_fires() {
    // The awk bug this lint replaces: code after a #[cfg(test)] module
    // was unchecked. Keep the regression case pinned by name.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let results = run_fixtures(&dir).expect("fixture corpus readable");
    let latch = results
        .iter()
        .find(|r| r.name.contains("latch_regression"))
        .expect("latch regression fixture exists");
    assert!(
        latch.expected.iter().any(|e| e.contains("panic-site")),
        "latch fixture must expect a panic-site finding below the test module"
    );
}
