fn run() {
    if failpoint::should_fail("alpha::used") {
        return;
    }
    if failpoint::should_fail("gamma::undoc_in_readme") {
        return;
    }
    if failpoint::should_fail("delta::untested") {
        return;
    }
    // a call site whose name was never registered:
    if failpoint::should_fail("zeta::unregistered") {
        return;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn probes_are_exempt() {
        // test-scope probes of unregistered names are fine
        assert!(!failpoint::should_fail("tests::whatever"));
    }
}
