// manifest covers: alpha::used, beta::orphan, gamma::undoc_in_readme
// (the delta site is deliberately absent from this file)
