/// Synthetic registry: `alpha::used` is fully covered; `beta::orphan`
/// has no call site; `gamma::undoc_in_readme` is missing from the
/// readme; `delta::untested` is missing from the test; `alpha::used`
/// appears twice (duplicate).
pub const SITES: &[&str] = &[
    "alpha::used",
    "beta::orphan",
    "gamma::undoc_in_readme",
    "delta::untested",
    "alpha::used",
];
