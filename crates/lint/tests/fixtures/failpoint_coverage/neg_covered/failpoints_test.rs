// manifest: alpha::one, beta::two
