fn run() {
    if failpoint::should_fail("alpha::one") {
        return;
    }
    if failpoint::should_fail("beta::two") {
        return;
    }
}
