pub const SITES: &[&str] = &["alpha::one", "beta::two"];
