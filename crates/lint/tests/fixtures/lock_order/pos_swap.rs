// The declared order says `S.b` before `S.a`, but the code nests
// a -> b. The acquisition of `S.b` under `S.a` is the finding.
// <!-- parinda-lint: lock-order: S.b < S.a -->
struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}
impl S {
    fn nested(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }
}
