// No lock-order declaration anywhere in this file, but a lock is
// acquired: deleting the marker from the design doc must fail the
// lint (the acceptance demo for the contract's tamper-resistance).
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn get(&self) -> u32 {
        let g = self.a.lock().unwrap();
        *g
    }
}
