// Two locks that are never held together: any declared order is
// fine, and guards that die at `drop` or at a `;` (momentary
// temporaries) never create edges.
// <!-- parinda-lint: lock-order: S.b < S.a -->
struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}
impl S {
    fn first(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let va = *ga;
        drop(ga);
        let gb = self.b.lock().unwrap();
        va + *gb
    }
    fn momentary(&self) {
        self.a.lock().unwrap().checked_add(1);
        let gb = self.b.lock().unwrap();
        drop(gb);
    }
}
