// Nesting matches the declared order exactly: clean.
// <!-- parinda-lint: lock-order: S.a < S.b -->
struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}
impl S {
    fn nested(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }
}
