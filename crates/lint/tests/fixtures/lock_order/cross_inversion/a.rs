// Task A nests LOG -> STATE through a helper, matching the declared
// order. The helpers live here; the inversion lives in b.rs.
fn task_a() {
    let gl = LOG.lock().unwrap();
    touch_state();
    drop(gl);
}

fn touch_state() {
    let gs = STATE.lock().unwrap();
    drop(gs);
}

fn touch_log() {
    let gl = LOG.lock().unwrap();
    drop(gl);
}
