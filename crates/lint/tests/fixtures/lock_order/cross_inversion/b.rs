// Task B holds STATE and reaches LOG through the helper defined in
// a.rs — a cross-file lock-order inversion (and, together with
// task_a, a cycle).
fn task_b() {
    let gs = STATE.lock().unwrap();
    touch_log();
    drop(gs);
}
