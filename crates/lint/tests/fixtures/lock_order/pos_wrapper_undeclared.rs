// `S.b` is only ever acquired through the `lock_b` wrapper; the
// marker omits it. The wrapper must be resolved to its underlying
// identity for the undeclared-lock finding to fire.
// <!-- parinda-lint: lock-order: S.a -->
struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}
impl S {
    fn lock_b(&self) -> std::sync::MutexGuard<'_, u32> {
        self.b.lock().unwrap_or_else(|p| p.into_inner())
    }
    fn use_both(&self) {
        let ga = self.a.lock().unwrap();
        drop(ga);
        let gb = self.lock_b();
        drop(gb);
    }
}
