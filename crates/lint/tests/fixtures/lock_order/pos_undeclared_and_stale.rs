// The marker declares `S.gone` (which no code acquires — stale) and
// omits `S.b` (which is acquired — undeclared). Two findings.
// <!-- parinda-lint: lock-order: S.a < S.gone -->
struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}
impl S {
    fn both(&self) {
        let ga = self.a.lock().unwrap();
        drop(ga);
        let gb = self.b.lock().unwrap();
        drop(gb);
    }
}
