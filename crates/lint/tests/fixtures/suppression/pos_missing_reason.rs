// Positive: a reason-less allow is itself a finding AND fails to
// suppress, and an unknown rule name is flagged.
fn bad_allow(x: Option<u32>) -> u32 {
    // parinda-lint: allow(panic-site)
    x.unwrap()
}

fn unknown_rule(y: Option<u32>) -> u32 {
    // parinda-lint: allow(no-such-rule): reasons don't save unknown rules
    y.unwrap_or(0)
}
