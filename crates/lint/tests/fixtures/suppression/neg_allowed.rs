// Negative: a justified allow silences the finding — same line or the
// line above both work.
fn covered_above(x: Option<u32>) -> u32 {
    // parinda-lint: allow(panic-site): invariant — caller checked is_some() one line up
    x.unwrap()
}

fn covered_same_line(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect() // parinda-lint: allow(nondeterminism): collected into a set by the caller, order irrelevant
}
