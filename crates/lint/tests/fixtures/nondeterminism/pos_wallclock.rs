// Positive: wall-clock reads and thread-identity outside budget.rs.
use std::time::{Instant, SystemTime};

fn timed() -> u64 {
    let t0 = Instant::now();
    let _ = t0;
    let now = std::time::SystemTime::now();
    let _ = now;
    0
}

fn which_worker() -> String {
    format!("{:?}", std::thread::current().id())
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
