//@path: crates/trace/src/lib.rs
// The clock exemption is one file wide: the same read anywhere else in
// the trace crate (here, lib.rs) must still be a finding.
use std::time::Instant;

pub fn sneaky_stamp() -> Instant {
    Instant::now()
}
