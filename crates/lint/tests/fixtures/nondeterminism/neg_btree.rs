// Negative: ordered containers iterate freely — that is the fix the
// rule demands.
use std::collections::{BTreeMap, BTreeSet};

fn sums(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().sum()
}

fn ordered(s: BTreeSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for v in s {
        out.push(v);
    }
    out.iter().copied().collect()
}
