// Positive: hash-ordered iteration feeding results, in every shape the
// rule tracks — annotated lets, struct fields, fn params, type aliases,
// constructor bindings, `for` loops, and method chains.
use std::collections::{HashMap, HashSet};

type Memo = HashMap<u32, f64>;

struct State {
    cache: HashMap<String, u32>,
}

fn from_annotation(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

fn from_alias(memo: Memo) -> Vec<f64> {
    memo.into_values().collect()
}

fn from_constructor() -> Vec<u32> {
    let mut set = HashSet::new();
    set.insert(1u32);
    set.iter().copied().collect()
}

fn for_loop_direct(scores: HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in scores {
        total += v;
    }
    total
}

impl State {
    fn ordered(&self) -> Vec<u32> {
        self.cache.values().copied().collect()
    }
}
