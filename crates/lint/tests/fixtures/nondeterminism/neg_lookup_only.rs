// Negative: point lookups and inserts on hash containers are fine —
// only *iteration* leaks hash order into results.
use std::collections::HashMap;

fn memoized(memo: &mut HashMap<u32, f64>, k: u32) -> f64 {
    if let Some(v) = memo.get(&k) {
        return *v;
    }
    let v = k as f64 * 1.5;
    memo.insert(k, v);
    *memo.entry(k).or_insert(v)
}

fn membership(m: &HashMap<String, u32>, key: &str) -> bool {
    m.contains_key(key) && !m.is_empty() && m.len() > 0
}
