//@path: crates/trace/src/clock.rs
// The one trace module allowed to read the wall clock: stamps are span
// payload, never pipeline input, so the exemption is safe here.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
