// A guard live across catch_unwind: a contained panic would poison
// the lock for every later acquirer.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn risky(&self) {
        let g = self.a.lock().unwrap();
        let _ = std::panic::catch_unwind(|| 1);
        drop(g);
    }
}
