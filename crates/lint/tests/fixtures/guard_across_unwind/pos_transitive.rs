// The guard is live across a call whose callee catches unwinds; the
// finding fires at the call site with the catch_unwind as witness.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn outer(&self) {
        let g = self.a.lock().unwrap();
        self.contained();
        drop(g);
    }
    fn contained(&self) {
        let _ = std::panic::catch_unwind(|| 1);
    }
}
