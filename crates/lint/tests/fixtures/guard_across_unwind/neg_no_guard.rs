// catch_unwind with no lock held anywhere on the path: clean, even
// though the same type does take locks elsewhere.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn read(&self) -> u32 {
        let g = self.a.lock().unwrap();
        let v = *g;
        drop(g);
        v
    }
    fn contained(&self) {
        let _ = std::panic::catch_unwind(|| 1);
    }
}
