// The guard is dropped before the unwind boundary: clean.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn careful(&self) {
        let g = self.a.lock().unwrap();
        let v = *g;
        drop(g);
        let _ = std::panic::catch_unwind(move || v + 1);
    }
}
