// Both declared phases have a span call site; nested paths count
// toward their top-level phase.
pub fn run(trace: &Trace) {
    let _p = trace.span("parse");
    let _q = trace.span("plan/join_search");
}

#[cfg(test)]
mod tests {
    // Test-scope spans never count toward coverage (or against the
    // declared-phase check).
    #[test]
    fn probe() {
        let t = Trace::recording();
        let _x = t.span("not_a_real_phase");
    }
}
