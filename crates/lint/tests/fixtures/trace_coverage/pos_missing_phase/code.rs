// Only `parse` is instrumented — `plan` and `whatif` are promised by
// the marker but have no span call site.
pub fn run(trace: &Trace) {
    let _p = trace.span("parse");
}
