pub fn run(trace: &Trace) {
    let _p = trace.span("parse");
}
