// `mystery/step` starts with a phase the design doc never declared —
// the docs and the instrumentation drifted apart.
pub fn run(trace: &Trace) {
    let _p = trace.span("parse");
    let _m = trace.span("mystery/step");
}
