// Negative: the PR 2 poison-recovery idiom, plus non-lock uses of the
// method names.
use std::sync::{Mutex, PoisonError, RwLock};

fn recovered(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn recovered_short(l: &RwLock<u32>) -> u32 {
    *l.read().unwrap_or_else(PoisonError::into_inner)
}

fn io_read_is_not_a_lock(buf: &[u8]) -> Option<u8> {
    // `.read(…)` with arguments doesn't match the guard pattern
    buf.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_locks() {
        let m = std::sync::Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
