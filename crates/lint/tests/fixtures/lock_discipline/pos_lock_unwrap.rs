// Positive: poisoning re-raised as a panic, in all three guard flavors.
use std::sync::{Mutex, RwLock};

fn mutex_unwrap(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn rwlock_read_expect(l: &RwLock<u32>) -> u32 {
    *l.read().expect("poisoned")
}

fn rwlock_write_unwrap(l: &RwLock<u32>) {
    *l.write().unwrap() += 1;
}
