// Negative: unwraps confined to test scope in all its forms.
fn prod(x: Option<u32>) -> Option<u32> {
    x.map(|v| v + 1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::prod(Some(1)).unwrap();
        panic!("fine in tests");
    }
}

#[cfg(all(test, feature = "slow"))]
mod slow_tests {
    #[test]
    fn t() {
        Option::<u32>::None.expect("fine in cfg(all(test, …))");
    }
}

mod integration_tests {
    // un-attributed *_tests module still counts as test scope
    pub fn helper() {
        Option::<u32>::Some(3).unwrap();
    }
}
