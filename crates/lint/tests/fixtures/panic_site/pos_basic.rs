// Positive: every banned construct in plain production code.
fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn expects(x: Option<u32>) -> u32 {
    x.expect("must be set")
}
fn panics(flag: bool) {
    if flag {
        panic!("boom");
    }
}
fn unreachable_arm(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => unreachable!(),
    }
}
fn not_done() {
    todo!()
}
fn also_not_done() {
    unimplemented!()
}
fn expect_on_nonself_with_ident_arg(r: Result<u32, String>, msg: &str) -> u32 {
    r.expect(msg)
}
