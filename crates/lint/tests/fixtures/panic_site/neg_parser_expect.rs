// Negative: the SQL parser's `self.expect(TokenKind::…)` combinator is
// a Result-returning method, not Option/Result::expect — must not flag.
struct Parser {
    pos: usize,
}
enum TokenKind {
    LParen,
    RParen,
}
impl Parser {
    fn expect(&mut self, kind: TokenKind) -> Result<(), String> {
        self.pos += 1;
        let _ = kind;
        Ok(())
    }
    fn parse(&mut self) -> Result<(), String> {
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        Ok(())
    }
}
