// Negative: panic-shaped text inside literals and comments must not
// trip the lexer-backed rules (the awk lint's other failure mode).

/// Doc comment showing the banned call: `x.unwrap()` and `panic!("…")`.
/// ```
/// let v = Some(1).unwrap(); // doc example, not production code
/// ```
pub fn documented() -> &'static str {
    // line comment mentioning .unwrap() and unreachable!()
    let plain = "call .unwrap() then panic!(\"nested \\\" quote\")";
    let raw = r#"contains x.unwrap() and .expect("msg")"#;
    let fenced = r##"raw with fence: panic!("inner "# hash-quote") still a string"##;
    let ch = '!';
    let lifetime_user: &'static str = "lifetimes don't start char literals";
    /* block comment: todo!() and unimplemented!()
       /* nested block: .expect("deep") */
       still comment */
    let _ = (plain, raw, fenced, ch);
    lifetime_user
}
