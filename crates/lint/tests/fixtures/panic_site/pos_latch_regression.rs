// Regression for the awk lint's latch bug: its `in_tests` flag set on
// the first `#[cfg(test)]` and never reset, so the unwrap in `after()`
// below was invisible to it. The token-accurate scope tracker must exit
// the test module at its closing brace and flag it.
fn before(x: Option<u32>) -> u32 {
    x.map(|v| v + 1).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fine_here() {
        super::before(Some(1));
        Option::<u32>::None.unwrap_or_default();
        let _ = Some(2).unwrap(); // tests may unwrap
    }
}

fn after(x: Option<u32>) -> u32 {
    x.unwrap() // the awk blind spot
}
