//@path: crates/durability/src/extra.rs
// Same shape as neg_out_of_scope.rs, but at a path inside the
// concurrent core: the mutex is tracked and the sleep is a finding.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn f(&self) {
        let g = self.a.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
    }
}
