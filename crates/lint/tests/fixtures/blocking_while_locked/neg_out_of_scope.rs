//@path: crates/trace/src/sink.rs
// Same shape as pos_in_scope.rs, but the file sits outside the
// concurrent core (server/durability/inum): the workspace scope does
// not track this mutex, so the analysis stays silent here.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn f(&self) {
        let g = self.a.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
    }
}
