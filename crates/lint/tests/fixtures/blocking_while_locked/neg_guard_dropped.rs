// The guard is explicitly dropped before the call that blocks: the
// classic false positive a flow-insensitive checker would report.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn outer(&self) {
        let g = self.a.lock().unwrap();
        drop(g);
        self.pause();
    }
    fn pause(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
