// A reasoned allow at the blocking site absorbs the direct finding
// AND stops transitive propagation: `outer` holds `S.b` across a call
// that reaches the suppressed fsync and must stay clean too.
struct S {
    a: std::sync::Mutex<std::fs::File>,
    b: std::sync::Mutex<u32>,
}
impl S {
    fn outer(&self) {
        let gb = self.b.lock().unwrap();
        self.flush();
        drop(gb);
    }
    fn flush(&self) {
        let g = self.a.lock().unwrap();
        // parinda-lint: allow(blocking-while-locked): fsync under the lock is the group-commit protocol
        g.sync_all().ok();
    }
}
