// The guard is live across a call whose callee sleeps: the finding
// fires at the call site, with the sleep as the witness.
struct S {
    a: std::sync::Mutex<u32>,
}
impl S {
    fn outer(&self) {
        let g = self.a.lock().unwrap();
        self.pause();
        drop(g);
    }
    fn pause(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
