// The guard dies at its block's closing brace; the sleep after the
// block is clean.
struct S {
    a: std::sync::Mutex<u64>,
}
impl S {
    fn outer(&self) {
        let v;
        {
            let g = self.a.lock().unwrap();
            v = *g;
        }
        std::thread::sleep(std::time::Duration::from_millis(v));
    }
}
