// The WAL shape: a blocking write on a field of the guard.
struct Inner {
    file: std::fs::File,
}
struct W {
    inner: std::sync::Mutex<Inner>,
}
impl W {
    fn append(&self) {
        let mut g = self.inner.lock().unwrap();
        g.file.write_all(b"frame").ok();
    }
}
