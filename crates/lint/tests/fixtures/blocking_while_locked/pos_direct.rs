// fsync with the guard live — the blocking call happens on the guard
// itself, which must still be caught.
struct S {
    a: std::sync::Mutex<std::fs::File>,
}
impl S {
    fn flush(&self) {
        let g = self.a.lock().unwrap();
        g.sync_all().ok();
    }
}
