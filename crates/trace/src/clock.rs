//! The **only** place in `parinda-trace` that reads the monotonic clock.
//!
//! `parinda-lint`'s `nondeterminism` rule bans wall-clock reads across the
//! workspace (they are the classic source of run-to-run variation) with a
//! whitelist of exactly three locations: `crates/parallel/src/budget.rs`
//! (deadline checks), `crates/bench/` (measurement is its job), and this
//! file. Everything else in the trace crate works with opaque [`Stamp`]s
//! and pre-measured nanosecond payloads, so the whitelist stays as narrow
//! as the contract demands — a clock read in `crates/trace/src/lib.rs`
//! *is* a lint finding (see the lint fixture corpus).

use std::time::Instant;

/// An opaque monotonic timestamp taken at span entry.
#[derive(Debug, Clone, Copy)]
pub struct Stamp(Instant);

/// Read the monotonic clock once, at span entry.
pub fn start() -> Stamp {
    Stamp(Instant::now())
}

/// Nanoseconds elapsed since `stamp`, saturating at `u64::MAX`.
pub fn elapsed_ns(stamp: &Stamp) -> u64 {
    u64::try_from(stamp.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
