//! # parinda-trace
//!
//! A std-only, zero-dependency structured observability layer for the
//! PARINDA pipeline: span-based phase timing (parse → plan → what-if →
//! INUM memo build → ILP/greedy rounds → AutoPart rounds) plus monotonic
//! counters (optimizer invocations, INUM cache hits/misses, candidates
//! evaluated/skipped, budget degradations, worker panics recovered),
//! aggregated per session.
//!
//! ## Design rules
//!
//! * **Tracing never influences results.** Timings live only in span
//!   payloads; no code path may branch on a recorded duration, and the
//!   determinism suite runs bit-identity checks with tracing on *and*
//!   off. The only clock reads live in [`mod@clock`] (`clock.rs`), the
//!   single file whitelisted by `parinda-lint`'s `nondeterminism` rule.
//! * **The disabled path is free.** A [`Trace`] is `Option<Arc<dyn
//!   Recorder>>` inside; when disabled, [`Trace::span`] is a null check —
//!   no clock read, no allocation, no virtual call — so instrumentation
//!   can stay in hot loops unconditionally.
//! * **Sinks merge deterministically.** Spans are aggregated by their
//!   stable *path* (a `/`-separated static string like
//!   `ilp_rounds/benefit_matrix`) into a `BTreeMap`, never by wall-clock
//!   or completion order; counters are relaxed atomics whose totals are
//!   exact under races. A [`TraceReport`]'s *shape* (paths, span counts,
//!   scheduling-independent counters) is therefore identical at any
//!   thread count — only the nanosecond payloads vary.
//!
//! ## Recording across a parallel sweep
//!
//! There is no thread-local "current span": a span is identified by its
//! full path, so handing tracing across `par_map` workers is just cloning
//! the `Trace` handle (it is `Send + Sync + Clone`) — every worker
//! records under the same stable path and the sink aggregates exactly as
//! the sequential run would.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic event counters aggregated per session.
///
/// The set is closed and order is stable: reports and JSON exports list
/// every counter (zeros included) so downstream schemas never shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Full optimizer invocations (query planning, INUM case planning,
    /// exact-cost fallbacks).
    OptimizerInvocations,
    /// INUM access-cost memo hits (an estimate served from cache).
    InumCacheHits,
    /// INUM access-cost memo misses (a fresh access-path costing).
    InumCacheMisses,
    /// Index/partition candidates fully evaluated by an advisor.
    CandidatesEvaluated,
    /// Candidates skipped because a budget expired first.
    CandidatesSkipped,
    /// Advisor runs that returned a degraded (best-so-far) result.
    BudgetDegradations,
    /// Worker panics contained at a parallel boundary.
    WorkerPanicsRecovered,
    /// Branch-and-bound nodes expanded by the ILP solver.
    SolverNodes,
    /// Statements merged into an existing template by workload
    /// compression (raw statements minus surviving templates).
    TemplatesMerged,
    /// Nonzero benefit-matrix cells materialized for the ILP (sparse and
    /// dense paths count the same nonzeros).
    MatrixNnz,
    /// Branch-and-bound nodes discarded against the incumbent bound
    /// (warm-started or discovered during the search).
    BnbPrunedByIncumbent,
    /// INUM internal-plan sets served from the engine-wide shared plan
    /// cache (a whole query's cache population skipped).
    SharedPlanHits,
    /// INUM internal-plan sets built fresh and published to the
    /// engine-wide shared plan cache.
    SharedPlanMisses,
    /// Records appended to the daemon's metadata WAL (session opens,
    /// closes, and state-mutating console commands).
    WalRecords,
    /// On-disk bytes appended to the metadata WAL (frame headers
    /// included).
    WalBytes,
    /// Snapshots persisted (startup compaction, periodic, and the
    /// final post-drain snapshot at shutdown).
    SnapshotsTaken,
    /// WAL records replayed on top of the snapshot during recovery.
    RecoveryReplayedRecords,
    /// Torn/corrupt WAL tails discarded at a record boundary during
    /// recovery (recovery itself still succeeds).
    RecoveryTruncatedTail,
    /// WAL appends, fsyncs, or snapshots that failed; the daemon
    /// degrades to ephemeral mode instead of dying.
    WalAppendFailures,
    /// Statements fed into a streaming accumulator.
    StreamStatementsFed,
    /// Stream epochs advanced (decay + merge + drift score).
    EpochsAdvanced,
    /// Epoch advances whose drift score crossed the re-advise threshold.
    DriftEvents,
    /// Templates whose INUM state an `apply_delta` reused from the
    /// existing model (no re-bind, no re-population).
    InumDeltaReused,
    /// Templates an `apply_delta` had to bind/populate from scratch
    /// (new or previously unpopulated).
    InumDeltaRebuilt,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 24] = [
        Counter::OptimizerInvocations,
        Counter::InumCacheHits,
        Counter::InumCacheMisses,
        Counter::CandidatesEvaluated,
        Counter::CandidatesSkipped,
        Counter::BudgetDegradations,
        Counter::WorkerPanicsRecovered,
        Counter::SolverNodes,
        Counter::TemplatesMerged,
        Counter::MatrixNnz,
        Counter::BnbPrunedByIncumbent,
        Counter::SharedPlanHits,
        Counter::SharedPlanMisses,
        Counter::WalRecords,
        Counter::WalBytes,
        Counter::SnapshotsTaken,
        Counter::RecoveryReplayedRecords,
        Counter::RecoveryTruncatedTail,
        Counter::WalAppendFailures,
        Counter::StreamStatementsFed,
        Counter::EpochsAdvanced,
        Counter::DriftEvents,
        Counter::InumDeltaReused,
        Counter::InumDeltaRebuilt,
    ];

    /// Stable snake_case name used in reports and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::OptimizerInvocations => "optimizer_invocations",
            Counter::InumCacheHits => "inum_cache_hits",
            Counter::InumCacheMisses => "inum_cache_misses",
            Counter::CandidatesEvaluated => "candidates_evaluated",
            Counter::CandidatesSkipped => "candidates_skipped",
            Counter::BudgetDegradations => "budget_degradations",
            Counter::WorkerPanicsRecovered => "worker_panics_recovered",
            Counter::SolverNodes => "solver_nodes",
            Counter::TemplatesMerged => "templates_merged",
            Counter::MatrixNnz => "matrix_nnz",
            Counter::BnbPrunedByIncumbent => "bnb_pruned_by_incumbent",
            Counter::SharedPlanHits => "shared_plan_hits",
            Counter::SharedPlanMisses => "shared_plan_misses",
            Counter::WalRecords => "wal_records",
            Counter::WalBytes => "wal_bytes",
            Counter::SnapshotsTaken => "snapshots_taken",
            Counter::RecoveryReplayedRecords => "recovery_replayed_records",
            Counter::RecoveryTruncatedTail => "recovery_truncated_tail",
            Counter::WalAppendFailures => "wal_append_failures",
            Counter::StreamStatementsFed => "stream_statements_fed",
            Counter::EpochsAdvanced => "epochs_advanced",
            Counter::DriftEvents => "drift_events",
            Counter::InumDeltaReused => "inum_delta_reused",
            Counter::InumDeltaRebuilt => "inum_delta_rebuilt",
        }
    }

    fn index(self) -> usize {
        match self {
            Counter::OptimizerInvocations => 0,
            Counter::InumCacheHits => 1,
            Counter::InumCacheMisses => 2,
            Counter::CandidatesEvaluated => 3,
            Counter::CandidatesSkipped => 4,
            Counter::BudgetDegradations => 5,
            Counter::WorkerPanicsRecovered => 6,
            Counter::SolverNodes => 7,
            Counter::TemplatesMerged => 8,
            Counter::MatrixNnz => 9,
            Counter::BnbPrunedByIncumbent => 10,
            Counter::SharedPlanHits => 11,
            Counter::SharedPlanMisses => 12,
            Counter::WalRecords => 13,
            Counter::WalBytes => 14,
            Counter::SnapshotsTaken => 15,
            Counter::RecoveryReplayedRecords => 16,
            Counter::RecoveryTruncatedTail => 17,
            Counter::WalAppendFailures => 18,
            Counter::StreamStatementsFed => 19,
            Counter::EpochsAdvanced => 20,
            Counter::DriftEvents => 21,
            Counter::InumDeltaReused => 22,
            Counter::InumDeltaRebuilt => 23,
        }
    }
}

/// Where completed spans and counter increments go.
///
/// Every method has a no-op default, so the disabled/null recorder is the
/// trait itself: `struct NoopRecorder; impl Recorder for NoopRecorder {}`.
/// Implementations must be internally synchronized (`Send + Sync`) — they
/// are shared across `par_map` workers — and must aggregate
/// deterministically: by span path and counter identity, never by arrival
/// order.
pub trait Recorder: Send + Sync {
    /// Record one completed span at `path` lasting `nanos`.
    fn record_span(&self, path: &str, nanos: u64) {
        let _ = (path, nanos);
    }

    /// Add `n` to `counter`.
    fn add(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// A deterministic snapshot of everything recorded so far.
    fn snapshot(&self) -> TraceReport {
        TraceReport::default()
    }
}

/// The null recorder: accepts everything, stores nothing.
///
/// Used by the overhead regression bench to separate "dynamic dispatch
/// plus a clock read" from the truly free disabled path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// The standard aggregating sink: span totals keyed by path in a
/// `BTreeMap`, counters as relaxed atomics.
///
/// Counter totals are exact under races (atomic read-modify-write); span
/// aggregation takes a short mutex with poison recovery (aggregation is
/// commutative, so a panicking worker mid-insert cannot corrupt more than
/// its own increment).
#[derive(Debug, Default)]
pub struct Sink {
    spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: [AtomicU64; Counter::ALL.len()],
}

impl Sink {
    /// A fresh, empty sink.
    pub fn new() -> Sink {
        Sink::default()
    }
}

impl Recorder for Sink {
    fn record_span(&self, path: &str, nanos: u64) {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner());
        let stat = spans.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(nanos);
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> TraceReport {
        let spans = self.spans.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let mut counters = BTreeMap::new();
        for c in Counter::ALL {
            counters.insert(c.name(), self.counters[c.index()].load(Ordering::Relaxed));
        }
        TraceReport { spans, counters }
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans completed at this path.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
}

/// A cheap, cloneable handle to a session's recorder — or to nothing.
///
/// `Trace::disabled()` (the default) carries no recorder: every
/// instrumentation call is a branch-predictable null check. Enable
/// recording with [`Trace::recording`] and read back with
/// [`Trace::snapshot`].
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace").field("enabled", &self.is_enabled()).finish()
    }
}

impl Trace {
    /// The free null handle: records nothing, reads no clocks.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// A handle backed by the standard aggregating [`Sink`].
    pub fn recording() -> Trace {
        Trace { inner: Some(Arc::new(Sink::new())) }
    }

    /// A handle backed by a caller-supplied recorder.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Trace {
        Trace { inner: Some(recorder) }
    }

    /// Is a recorder attached?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span at `path`; the span is recorded when the returned
    /// guard drops. When disabled this reads no clock and allocates
    /// nothing.
    ///
    /// Paths are `/`-separated stable identifiers (`"inum_build"`,
    /// `"ilp_rounds/benefit_matrix"`); aggregation is keyed by the full
    /// path, so nesting is expressed in the path itself and survives
    /// hand-off across parallel workers.
    pub fn span(&self, path: &'static str) -> Span<'_> {
        match &self.inner {
            None => Span { recorder: None, path, start: None },
            Some(rec) => Span { recorder: Some(rec.as_ref()), path, start: Some(clock::start()) },
        }
    }

    /// Add `n` to `counter` (no-op when disabled).
    pub fn count(&self, counter: Counter, n: u64) {
        if let Some(rec) = &self.inner {
            rec.add(counter, n);
        }
    }

    /// Snapshot the attached recorder (empty report when disabled).
    pub fn snapshot(&self) -> TraceReport {
        match &self.inner {
            None => TraceReport::default(),
            Some(rec) => rec.snapshot(),
        }
    }
}

/// RAII guard for an open span; records `elapsed` at drop.
pub struct Span<'a> {
    recorder: Option<&'a dyn Recorder>,
    path: &'static str,
    start: Option<clock::Stamp>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (self.recorder, &self.start) {
            rec.record_span(self.path, clock::elapsed_ns(start));
        }
    }
}

/// A deterministic snapshot of a recorder: span totals keyed by path,
/// counter totals keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Per-path span statistics, ordered by path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Every [`Counter`], zeros included, ordered by name.
    pub counters: BTreeMap<&'static str, u64>,
}

impl TraceReport {
    /// The scheduling-independent part of the report: every span path
    /// with its count, timings stripped. Two runs of the same workload
    /// at different thread counts produce equal shapes.
    pub fn shape(&self) -> Vec<(String, u64)> {
        self.spans.iter().map(|(p, s)| (p.clone(), s.count)).collect()
    }

    /// The total for one counter (0 if the report is empty).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.get(counter.name()).copied().unwrap_or(0)
    }

    /// Merge another report into this one (span-path-keyed, commutative
    /// and deterministic regardless of merge order).
    pub fn merge(&mut self, other: &TraceReport) {
        for (path, stat) in &other.spans {
            let mine = self.spans.entry(path.clone()).or_default();
            mine.count += stat.count;
            mine.total_ns = mine.total_ns.saturating_add(stat.total_ns);
        }
        for (name, n) in &other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
    }

    /// Render the `profile show` table: per-phase rows (top-level span
    /// paths and their nested children) with total time and % of the
    /// top-level total, followed by the counter block.
    pub fn render_profile(&self) -> String {
        if self.spans.is_empty() && self.counters.values().all(|&n| n == 0) {
            return "profile: nothing recorded yet (run a command with profiling on)".to_string();
        }
        let grand: u64 = self
            .spans
            .iter()
            .filter(|(p, _)| !p.contains('/'))
            .map(|(_, s)| s.total_ns)
            .sum();
        let mut rows: Vec<[String; 4]> = Vec::new();
        for (path, stat) in &self.spans {
            let pct = if grand == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", stat.total_ns as f64 * 100.0 / grand as f64)
            };
            let indent = path.matches('/').count() * 2;
            rows.push([
                format!("{}{}", " ".repeat(indent), path),
                stat.count.to_string(),
                format_ns(stat.total_ns),
                pct,
            ]);
        }
        let headers = ["phase", "count", "total", "% of run"];
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for r in &rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt = |cells: &[String], out: &mut String, widths: &[usize]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{c:<w$}", w = widths[i]));
                } else {
                    out.push_str(&format!("{c:>w$}", w = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt(&headers.map(str::to_string), &mut out, &widths);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &rows {
            fmt(r, &mut out, &widths);
        }
        out.push_str("\ncounters\n--------\n");
        for (name, n) in &self.counters {
            out.push_str(&format!("{name:<26} {n}\n"));
        }
        out
    }

    /// Serialize as the documented `parinda-trace/v1` JSON schema (see
    /// EXPERIMENTS.md): `{"schema", "spans": {path: {count, total_ns}},
    /// "counters": {name: total}}`. Hand-rolled — the workspace has no
    /// serde.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"parinda-trace/v1\",\n  \"spans\": {");
        let mut first = true;
        for (path, stat) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"total_ns\": {}}}",
                json_string(path),
                stat.count,
                stat.total_ns
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"counters\": {");
        first = true;
        for (name, n) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", json_string(name), n));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Human-readable duration: ns under 10 µs, µs under 10 ms, else ms.
fn format_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    }
}

/// Minimal JSON string escaping (quote, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        {
            let _s = t.span("parse");
        }
        t.count(Counter::OptimizerInvocations, 5);
        assert!(!t.is_enabled());
        assert_eq!(t.snapshot(), TraceReport::default());
    }

    #[test]
    fn spans_aggregate_by_path() {
        let t = Trace::recording();
        for _ in 0..3 {
            let _s = t.span("inum_build");
        }
        {
            let _outer = t.span("ilp_rounds");
            let _inner = t.span("ilp_rounds/benefit_matrix");
        }
        let r = t.snapshot();
        assert_eq!(r.spans["inum_build"].count, 3);
        assert_eq!(r.spans["ilp_rounds"].count, 1);
        assert_eq!(r.spans["ilp_rounds/benefit_matrix"].count, 1);
        assert_eq!(
            r.shape(),
            vec![
                ("ilp_rounds".to_string(), 1),
                ("ilp_rounds/benefit_matrix".to_string(), 1),
                ("inum_build".to_string(), 3),
            ]
        );
    }

    #[test]
    fn counter_totals_exact_under_races() {
        let t = Trace::recording();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        t.count(Counter::InumCacheHits, 1);
                        let _s = t.span("whatif");
                    }
                });
            }
        });
        let r = t.snapshot();
        assert_eq!(r.counter(Counter::InumCacheHits), 80_000);
        assert_eq!(r.spans["whatif"].count, 80_000);
    }

    #[test]
    fn snapshot_lists_every_counter_including_zeros() {
        let t = Trace::recording();
        t.count(Counter::SolverNodes, 7);
        let r = t.snapshot();
        assert_eq!(r.counters.len(), Counter::ALL.len());
        assert_eq!(r.counter(Counter::SolverNodes), 7);
        assert_eq!(r.counter(Counter::CandidatesSkipped), 0);
    }

    #[test]
    fn noop_recorder_discards_everything() {
        let t = Trace::with_recorder(Arc::new(NoopRecorder));
        assert!(t.is_enabled());
        {
            let _s = t.span("plan");
        }
        t.count(Counter::OptimizerInvocations, 1);
        assert_eq!(t.snapshot(), TraceReport::default());
    }

    #[test]
    fn merge_is_order_independent() {
        let a = {
            let t = Trace::recording();
            let _ = t.span("parse");
            t.count(Counter::InumCacheMisses, 2);
            t.snapshot()
        };
        let b = {
            let t = Trace::recording();
            let _ = t.span("parse");
            let _ = t.span("plan");
            t.count(Counter::InumCacheMisses, 3);
            t.snapshot()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.spans["parse"].count, 2);
        assert_eq!(ab.counter(Counter::InumCacheMisses), 5);
    }

    #[test]
    fn json_has_schema_and_all_counters() {
        let t = Trace::recording();
        let _ = t.span("autopart_rounds");
        drop(t.span("autopart_rounds"));
        let json = t.snapshot().to_json();
        assert!(json.contains("\"schema\": \"parinda-trace/v1\""));
        assert!(json.contains("\"autopart_rounds\": {\"count\": 2"));
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\"", c.name())), "missing {}", c.name());
        }
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn profile_render_has_percentages_and_counters() {
        let t = Trace::recording();
        {
            let _s = t.span("inum_build");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        t.count(Counter::OptimizerInvocations, 4);
        let table = t.snapshot().render_profile();
        assert!(table.contains("inum_build"));
        assert!(table.contains("% of run"));
        assert!(table.contains("optimizer_invocations"));
        assert!(table.contains('%'));
    }

    #[test]
    fn empty_profile_renders_hint() {
        assert!(Trace::recording().snapshot().render_profile().contains("nothing recorded"));
    }

    #[test]
    fn format_ns_tiers() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(25_000), "25.0us");
        assert_eq!(format_ns(12_000_000), "12.0ms");
    }
}
