//! # parinda-stream
//!
//! Continuous tuning: an epoch-based streaming workload accumulator on
//! top of the template clustering from `parinda-workload` (ROADMAP open
//! item 3, after *Semi-Automatic Index Tuning: Keeping DBAs in the
//! Loop* and AIM's continuous fleet advising).
//!
//! Statements [`feed`](StreamAccumulator::feed) in one at a time and
//! fold into fingerprint-keyed templates exactly as batch compression
//! does. Template weights carry across epochs with an **exponential
//! decay applied in fixed-point integer arithmetic, keyed to the epoch
//! counter** — never to wall-clock time — so a replayed stream produces
//! bit-identical weights on any machine at any speed. A drift detector
//! scores the total-variation distance between consecutive epochs'
//! template distributions; the console re-advises when the score
//! crosses a threshold.
//!
//! The DBA steers the stream through a [`ConstraintStore`]: `pin`
//! forces an index into every future design (consuming storage budget
//! first), `ban` removes it from the solver's search space. Both are
//! plain ordered sets of index names so the constraint state serializes
//! deterministically through the metadata WAL.
//!
//! ## Determinism contract
//!
//! * Feeding is commutative within an epoch: weights accumulate by
//!   integer addition into a fingerprint-keyed map, so any permutation
//!   of the same statements yields the same epoch state.
//! * Decay is `w ← ⌊w·num/den⌋` per epoch — integer floor division,
//!   no floats, no clocks.
//! * New templates are committed in fingerprint order, existing ones
//!   keep their positions: the template vector is a pure function of
//!   the multiset of statements fed per epoch.
//! * [`drift_ppm`] is symmetric and zero on identical distributions.

#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use parinda_failpoint::should_fail;
use parinda_sql::{parse_select, Select};
use parinda_trace::Trace;
use parinda_workload::{fingerprint, CompressedWorkload, QueryTemplate};

/// Fixed-point scale for template weights: 1.0 statements = 1_000_000
/// micro-statements. All decay arithmetic happens in these units.
pub const WEIGHT_SCALE: u64 = 1_000_000;

/// Default decay numerator: weights halve each epoch a template stays
/// silent (`w ← ⌊w·1/2⌋`).
pub const DEFAULT_DECAY_NUM: u64 = 1;

/// Default decay denominator. See [`DEFAULT_DECAY_NUM`].
pub const DEFAULT_DECAY_DEN: u64 = 2;

/// Templates whose decayed weight falls strictly below this many
/// micro-statements (0.01 statements) are evicted at epoch advance.
pub const DEFAULT_EVICT_THRESHOLD_FP: u64 = WEIGHT_SCALE / 100;

/// Drift scores are parts-per-million of total variation: 1_000_000
/// means the epochs share no probability mass.
pub const DRIFT_SCALE: u64 = 1_000_000;

/// A typed streaming error. Maps onto the console's `error [parse]:` /
/// `error [advisor]:` reply families — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The fed statement did not parse.
    Parse(String),
    /// A DBA constraint is contradictory (e.g. pin of a banned index).
    Constraint(String),
    /// A failpoint injected a fault at the named site.
    Injected(&'static str),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse(msg) => write!(f, "{msg}"),
            StreamError::Constraint(msg) => write!(f, "{msg}"),
            StreamError::Injected(site) => write!(f, "failpoint {site}: injected error"),
        }
    }
}

impl std::error::Error for StreamError {}

/// One streaming template: a fingerprint-keyed cluster whose weight
/// decays across epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTemplate {
    /// First-seen member statement, used to plan/cost the cluster.
    pub query: Select,
    /// Normalized text that keys the cluster.
    pub fingerprint: String,
    /// Decayed weight in micro-statements ([`WEIGHT_SCALE`] units).
    pub weight_fp: u64,
    /// Raw statements folded in over the template's lifetime.
    pub members: u64,
    /// Epoch the template first appeared in (0-based: the epoch counter
    /// *before* the advance that committed it).
    pub first_epoch: u64,
    /// Last epoch with fresh arrivals for this template.
    pub last_epoch: u64,
}

impl StreamTemplate {
    /// Weight as fractional statements (for the advisor's f64 pipeline).
    pub fn weight(&self) -> f64 {
        self.weight_fp as f64 / WEIGHT_SCALE as f64
    }
}

/// What one [`StreamAccumulator::advance_epoch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSummary {
    /// Epoch counter after the advance (first advance reports 1).
    pub epoch: u64,
    /// Live templates after decay, merge, and eviction.
    pub templates: usize,
    /// Templates that appeared for the first time this epoch.
    pub arrived: usize,
    /// Templates evicted because decay took them below threshold.
    pub evicted: usize,
    /// Sum of live template weights, micro-statements.
    pub total_weight_fp: u64,
    /// Total-variation distance to the previous epoch's distribution,
    /// in parts per million ([`DRIFT_SCALE`]).
    pub drift_ppm: u64,
}

struct Pending {
    query: Select,
    weight_fp: u64,
    members: u64,
}

/// Epoch-based streaming workload accumulator. Single-writer by design:
/// the owning console serializes mutations (and the daemon's WAL
/// journals them), so the accumulator itself holds no locks.
pub struct StreamAccumulator {
    epoch: u64,
    decay_num: u64,
    decay_den: u64,
    evict_threshold_fp: u64,
    templates: Vec<StreamTemplate>,
    by_fp: BTreeMap<String, usize>,
    pending: BTreeMap<String, Pending>,
    prev_dist: Vec<(String, u64)>,
    last_drift_ppm: u64,
    statements_fed: u64,
}

impl Default for StreamAccumulator {
    fn default() -> Self {
        StreamAccumulator::new()
    }
}

impl StreamAccumulator {
    /// An empty accumulator with the default half-life decay and
    /// eviction threshold.
    pub fn new() -> StreamAccumulator {
        StreamAccumulator::with_decay(DEFAULT_DECAY_NUM, DEFAULT_DECAY_DEN)
    }

    /// An empty accumulator with a custom per-epoch decay ratio
    /// `num/den` (clamped to `num < den`, `den > 0`).
    pub fn with_decay(num: u64, den: u64) -> StreamAccumulator {
        let den = den.max(1);
        StreamAccumulator {
            epoch: 0,
            decay_num: num.min(den.saturating_sub(1)),
            decay_den: den,
            evict_threshold_fp: DEFAULT_EVICT_THRESHOLD_FP,
            templates: Vec::new(),
            by_fp: BTreeMap::new(),
            pending: BTreeMap::new(),
            prev_dist: Vec::new(),
            last_drift_ppm: 0,
            statements_fed: 0,
        }
    }

    /// Feed one statement with weight 1.0 (one micro-scaled statement).
    pub fn feed(&mut self, sql: &str) -> Result<(), StreamError> {
        self.feed_weighted(sql, WEIGHT_SCALE)
    }

    /// Feed one statement with an explicit weight in micro-statements.
    /// Accumulation is a fingerprint-keyed integer add, so feeding order
    /// within an epoch cannot change the epoch's outcome.
    pub fn feed_weighted(&mut self, sql: &str, weight_fp: u64) -> Result<(), StreamError> {
        if should_fail("stream::feed") {
            return Err(StreamError::Injected("stream::feed"));
        }
        let query = parse_select(sql).map_err(|e| StreamError::Parse(e.to_string()))?;
        // Fingerprint the *canonical* rendering, exactly as batch
        // compression does, so streamed and batch clusters key the same.
        let fp = fingerprint(&query.to_string());
        let entry = self.pending.entry(fp).or_insert(Pending {
            query,
            weight_fp: 0,
            members: 0,
        });
        entry.weight_fp = entry.weight_fp.saturating_add(weight_fp);
        entry.members += 1;
        self.statements_fed += 1;
        Ok(())
    }

    /// Close the current epoch: decay every live template, merge the
    /// epoch's arrivals at full weight, evict templates that decayed
    /// below threshold, and score drift against the previous epoch.
    ///
    /// All state is computed into locals and committed only at the end,
    /// so an injected fault (`stream::epoch`, `stream::drift`) leaves
    /// the accumulator exactly as it was.
    pub fn advance_epoch(&mut self, trace: &Trace) -> Result<EpochSummary, StreamError> {
        if should_fail("stream::epoch") {
            return Err(StreamError::Injected("stream::epoch"));
        }
        // 1. Decay survivors from previous epochs.
        let mut templates: Vec<StreamTemplate> = self
            .templates
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.weight_fp = t.weight_fp * self.decay_num / self.decay_den;
                t
            })
            .collect();
        let mut by_fp: BTreeMap<String, usize> = self.by_fp.clone();
        // 2. Merge this epoch's arrivals at full weight. BTreeMap
        //    iteration commits new templates in fingerprint order,
        //    erasing any dependence on feed order.
        let mut arrived = 0usize;
        for (fp, p) in &self.pending {
            match by_fp.get(fp) {
                Some(&i) => {
                    templates[i].weight_fp = templates[i].weight_fp.saturating_add(p.weight_fp);
                    templates[i].members += p.members;
                    templates[i].last_epoch = self.epoch;
                }
                None => {
                    arrived += 1;
                    by_fp.insert(fp.clone(), templates.len());
                    templates.push(StreamTemplate {
                        query: p.query.clone(),
                        fingerprint: fp.clone(),
                        weight_fp: p.weight_fp,
                        members: p.members,
                        first_epoch: self.epoch,
                        last_epoch: self.epoch,
                    });
                }
            }
        }
        // 3. Evict templates whose decayed weight fell below threshold.
        let before = templates.len();
        templates.retain(|t| t.weight_fp >= self.evict_threshold_fp);
        let evicted = before - templates.len();
        let by_fp: BTreeMap<String, usize> =
            templates.iter().enumerate().map(|(i, t)| (t.fingerprint.clone(), i)).collect();
        // 4. Score drift between the previous and the new distribution.
        let dist = distribution(&templates);
        let drift = {
            let _span = trace.span("drift_check");
            if should_fail("stream::drift") {
                return Err(StreamError::Injected("stream::drift"));
            }
            drift_ppm(&self.prev_dist, &dist)
        };
        // 5. Commit.
        let total_weight_fp = templates.iter().map(|t| t.weight_fp).sum();
        self.epoch += 1;
        self.templates = templates;
        self.by_fp = by_fp;
        self.pending.clear();
        self.prev_dist = dist;
        self.last_drift_ppm = drift;
        Ok(EpochSummary {
            epoch: self.epoch,
            templates: self.templates.len(),
            arrived,
            evicted,
            total_weight_fp,
            drift_ppm: drift,
        })
    }

    /// Epochs advanced so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live templates in committed order.
    pub fn templates(&self) -> &[StreamTemplate] {
        &self.templates
    }

    /// Statements fed since creation (including not-yet-committed ones).
    pub fn statements_fed(&self) -> u64 {
        self.statements_fed
    }

    /// Statements fed but not yet folded in by an epoch advance.
    pub fn pending_statements(&self) -> u64 {
        self.pending.values().map(|p| p.members).sum()
    }

    /// Drift score of the most recent epoch advance, in ppm.
    pub fn last_drift_ppm(&self) -> u64 {
        self.last_drift_ppm
    }

    /// Representative statements of live templates, parallel to
    /// [`Self::weights`].
    pub fn queries(&self) -> Vec<Select> {
        self.templates.iter().map(|t| t.query.clone()).collect()
    }

    /// Decayed per-template weights as fractional statements, parallel
    /// to [`Self::queries`].
    pub fn weights(&self) -> Vec<f64> {
        self.templates.iter().map(|t| t.weight()).collect()
    }

    /// The live epoch state as a batch [`CompressedWorkload`] — the
    /// bridge to every existing weighted-advisor entry point.
    pub fn compressed(&self) -> CompressedWorkload {
        let templates: Vec<QueryTemplate> = self
            .templates
            .iter()
            .map(|t| QueryTemplate {
                query: t.query.clone(),
                weight: t.weight(),
                members: t.members as usize,
                fingerprint: t.fingerprint.clone(),
            })
            .collect();
        let raw_statements = templates.iter().map(|t| t.members).sum();
        let raw_weight = templates.iter().map(|t| t.weight).sum();
        CompressedWorkload { templates, raw_statements, raw_weight }
    }
}

/// Normalize live template weights into a (fingerprint, ppm-share)
/// distribution, fingerprint-sorted.
fn distribution(templates: &[StreamTemplate]) -> Vec<(String, u64)> {
    let total: u64 = templates.iter().map(|t| t.weight_fp).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut dist: Vec<(String, u64)> = templates
        .iter()
        .map(|t| (t.fingerprint.clone(), t.weight_fp.saturating_mul(DRIFT_SCALE) / total))
        .collect();
    dist.sort();
    dist
}

/// Total-variation distance between two normalized template
/// distributions, in parts per million: `Σ|p − q| / 2` over the union
/// of fingerprints. Symmetric, zero for identical distributions,
/// [`DRIFT_SCALE`] for disjoint supports. An empty distribution against
/// a non-empty one scores [`DRIFT_SCALE`] (the first epoch is maximal
/// drift by convention).
pub fn drift_ppm(a: &[(String, u64)], b: &[(String, u64)]) -> u64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0,
        (true, false) | (false, true) => return DRIFT_SCALE,
        (false, false) => {}
    }
    let am: BTreeMap<&str, u64> = a.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let bm: BTreeMap<&str, u64> = b.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut sum = 0u64;
    let keys: BTreeSet<&str> = am.keys().chain(bm.keys()).copied().collect();
    for k in keys {
        let p = am.get(k).copied().unwrap_or(0);
        let q = bm.get(k).copied().unwrap_or(0);
        sum = sum.saturating_add(p.abs_diff(q));
    }
    sum / 2
}

/// The DBA's standing constraints on the physical design. Ordered sets
/// of index display names, so WAL-recovered state and in-memory state
/// compare bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintStore {
    pinned: BTreeSet<String>,
    banned: BTreeSet<String>,
}

impl ConstraintStore {
    /// An empty store.
    pub fn new() -> ConstraintStore {
        ConstraintStore::default()
    }

    /// Force `name` into every future design. Errors if `name` is
    /// currently banned — the DBA must `reject` the ban first.
    pub fn pin(&mut self, name: &str) -> Result<(), StreamError> {
        let name = valid_name(name)?;
        if self.banned.contains(name) {
            return Err(StreamError::Constraint(format!(
                "index `{name}` is banned; remove the ban before pinning it"
            )));
        }
        self.pinned.insert(name.to_string());
        Ok(())
    }

    /// Remove `name` from the solver's search space in every future
    /// design. Errors if `name` is currently pinned.
    pub fn ban(&mut self, name: &str) -> Result<(), StreamError> {
        let name = valid_name(name)?;
        if self.pinned.contains(name) {
            return Err(StreamError::Constraint(format!(
                "index `{name}` is pinned; remove the pin before banning it"
            )));
        }
        self.banned.insert(name.to_string());
        Ok(())
    }

    /// Drop a pin (no-op if absent). Returns whether it was present.
    pub fn unpin(&mut self, name: &str) -> bool {
        self.pinned.remove(name.trim())
    }

    /// Drop a ban (no-op if absent). Returns whether it was present.
    pub fn unban(&mut self, name: &str) -> bool {
        self.banned.remove(name.trim())
    }

    /// Pinned index names, sorted.
    pub fn pinned(&self) -> impl Iterator<Item = &str> {
        self.pinned.iter().map(String::as_str)
    }

    /// Banned index names, sorted.
    pub fn banned(&self) -> impl Iterator<Item = &str> {
        self.banned.iter().map(String::as_str)
    }

    /// Is anything pinned or banned?
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty() && self.banned.is_empty()
    }
}

fn valid_name(name: &str) -> Result<&str, StreamError> {
    let name = name.trim();
    if name.is_empty() {
        return Err(StreamError::Constraint("empty index name".to_string()));
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(acc: &mut StreamAccumulator, stmts: &[&str]) {
        for s in stmts {
            acc.feed(s).expect("test statement feeds");
        }
    }

    #[test]
    fn feeding_clusters_by_fingerprint() {
        let mut acc = StreamAccumulator::new();
        feed_all(
            &mut acc,
            &[
                "SELECT a FROM t WHERE b = 1",
                "SELECT a FROM t WHERE b = 99",
                "SELECT a FROM t WHERE c = 1",
            ],
        );
        let s = acc.advance_epoch(&Trace::disabled()).expect("epoch advances");
        assert_eq!(s.epoch, 1);
        assert_eq!(s.templates, 2);
        assert_eq!(s.arrived, 2);
        assert_eq!(s.drift_ppm, DRIFT_SCALE); // first epoch: maximal by convention
        assert_eq!(s.total_weight_fp, 3 * WEIGHT_SCALE);
        assert_eq!(acc.statements_fed(), 3);
    }

    #[test]
    fn feed_order_cannot_change_the_epoch() {
        let stmts =
            ["SELECT a FROM t WHERE b = 1", "SELECT c FROM u WHERE d = 2", "SELECT a FROM t WHERE b = 7"];
        let mut fwd = StreamAccumulator::new();
        feed_all(&mut fwd, &stmts);
        let mut rev = StreamAccumulator::new();
        for s in stmts.iter().rev() {
            rev.feed(s).expect("feeds");
        }
        let sf = fwd.advance_epoch(&Trace::disabled()).expect("epoch");
        let sr = rev.advance_epoch(&Trace::disabled()).expect("epoch");
        assert_eq!(sf, sr);
        // Weights, fingerprints, and ordering are feed-order-free; only
        // the first-seen representative (like batch compression's) may
        // carry different literals.
        let shape = |acc: &StreamAccumulator| {
            acc.templates()
                .iter()
                .map(|t| (t.fingerprint.clone(), t.weight_fp, t.members))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&fwd), shape(&rev));
    }

    #[test]
    fn silent_templates_decay_and_evict() {
        let mut acc = StreamAccumulator::new();
        acc.feed("SELECT a FROM t WHERE b = 1").expect("feeds");
        acc.advance_epoch(&Trace::disabled()).expect("epoch");
        let mut prev = acc.templates()[0].weight_fp;
        // halves every silent epoch, strictly, until eviction
        loop {
            acc.advance_epoch(&Trace::disabled()).expect("epoch");
            if acc.templates().is_empty() {
                break;
            }
            let w = acc.templates()[0].weight_fp;
            assert!(w < prev, "decay must strictly shrink ({w} !< {prev})");
            assert_eq!(w, prev / 2);
            prev = w;
        }
        // 1.0 halves below 0.01 within 7 epochs
        assert!(acc.epoch() <= 9, "eviction took {} epochs", acc.epoch());
    }

    #[test]
    fn refeeding_keeps_a_template_alive() {
        let mut acc = StreamAccumulator::new();
        for _ in 0..20 {
            acc.feed("SELECT a FROM t WHERE b = 3").expect("feeds");
            acc.advance_epoch(&Trace::disabled()).expect("epoch");
        }
        assert_eq!(acc.templates().len(), 1);
        // steady state: w = w/2 + 1  →  w → 2.0 from below
        let w = acc.templates()[0].weight_fp;
        assert!(w > WEIGHT_SCALE && w <= 2 * WEIGHT_SCALE, "steady-state weight {w}");
    }

    #[test]
    fn drift_is_zero_for_identical_epochs_and_maximal_for_disjoint() {
        let mut acc = StreamAccumulator::new();
        acc.feed("SELECT a FROM t WHERE b = 1").expect("feeds");
        acc.advance_epoch(&Trace::disabled()).expect("epoch");
        // same template again: same normalized distribution, zero drift
        acc.feed("SELECT a FROM t WHERE b = 2").expect("feeds");
        let s = acc.advance_epoch(&Trace::disabled()).expect("epoch");
        assert_eq!(s.drift_ppm, 0);
        let a = vec![("q1".to_string(), DRIFT_SCALE)];
        let b = vec![("q2".to_string(), DRIFT_SCALE)];
        assert_eq!(drift_ppm(&a, &b), DRIFT_SCALE);
        assert_eq!(drift_ppm(&a, &a), 0);
        assert_eq!(drift_ppm(&[], &[]), 0);
        assert_eq!(drift_ppm(&[], &a), DRIFT_SCALE);
        assert_eq!(drift_ppm(&a, &[]), DRIFT_SCALE);
    }

    #[test]
    fn parse_errors_are_typed() {
        let mut acc = StreamAccumulator::new();
        let err = acc.feed("DELETE FROM t").expect_err("non-select rejected");
        assert!(matches!(err, StreamError::Parse(_)));
        assert_eq!(acc.statements_fed(), 0);
    }

    #[test]
    fn streamed_epoch_matches_batch_compression() {
        use parinda_workload::{compress_workload, parse_workload};
        let text = "SELECT ra FROM photoobj WHERE objid = 1;
                    SELECT ra FROM photoobj WHERE objid = 2;
                    SELECT dec FROM photoobj WHERE run = 3;";
        let batch = compress_workload(&parse_workload(text).expect("parses"));
        let mut acc = StreamAccumulator::new();
        feed_all(
            &mut acc,
            &[
                "SELECT ra FROM photoobj WHERE objid = 1",
                "SELECT ra FROM photoobj WHERE objid = 2",
                "SELECT dec FROM photoobj WHERE run = 3",
            ],
        );
        acc.advance_epoch(&Trace::disabled()).expect("epoch");
        let streamed = acc.compressed();
        let batch_fps: Vec<&str> = batch.templates.iter().map(|t| t.fingerprint.as_str()).collect();
        let mut stream_fps: Vec<&str> =
            streamed.templates.iter().map(|t| t.fingerprint.as_str()).collect();
        stream_fps.sort();
        let mut sorted_batch = batch_fps.clone();
        sorted_batch.sort();
        assert_eq!(stream_fps, sorted_batch);
        assert_eq!(streamed.raw_weight, batch.raw_weight);
    }

    #[test]
    fn constraints_reject_contradictions() {
        let mut c = ConstraintStore::new();
        c.pin("idx_t_a").expect("pin");
        let err = c.ban("idx_t_a").expect_err("ban of pinned rejected");
        assert!(matches!(err, StreamError::Constraint(_)));
        c.ban("idx_t_b").expect("ban");
        let err = c.pin("idx_t_b").expect_err("pin of banned rejected");
        assert!(matches!(err, StreamError::Constraint(_)));
        assert!(c.unpin("idx_t_a"));
        c.ban("idx_t_a").expect("ban after unpin");
        assert_eq!(c.pinned().count(), 0);
        assert_eq!(c.banned().collect::<Vec<_>>(), vec!["idx_t_a", "idx_t_b"]);
        assert!(c.pin("   ").is_err());
    }

    #[test]
    fn drift_span_is_recorded() {
        let t = Trace::recording();
        let mut acc = StreamAccumulator::new();
        acc.feed("SELECT a FROM t WHERE b = 1").expect("feeds");
        acc.advance_epoch(&t).expect("epoch");
        let r = t.snapshot();
        assert_eq!(r.spans["drift_check"].count, 1);
    }
}
