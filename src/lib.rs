//! Workspace facade: re-exports the PARINDA crates for examples and
//! integration tests.

pub use parinda;
pub use parinda_advisor as advisor;
pub use parinda_catalog as catalog;
pub use parinda_executor as executor;
pub use parinda_inum as inum;
pub use parinda_optimizer as optimizer;
pub use parinda_solver as solver;
pub use parinda_sql as sql;
pub use parinda_storage as storage;
pub use parinda_whatif as whatif;
pub use parinda_workload as workload;
