//! The PARINDA interactive console — a terminal rendition of the demo GUI
//! (paper Figures 2–3): load a database and workload, simulate what-if
//! features, evaluate benefits, and run the automatic advisors.
//!
//! All command parsing and dispatch lives in [`parinda::Console`]; this
//! binary is only the REPL around it. Errors — including contained
//! internal panics — are printed with their taxonomy kind and the loop
//! continues: bad input never aborts the process.
//!
//! Ctrl-C does not kill the session: it cancels the console's shared
//! [`parinda::CancelToken`], so an advisor in flight stops at its next
//! checkpoint and returns its best-so-far design flagged degraded
//! (pressed at the prompt, it pre-arms cancellation of the next run,
//! like the `cancel` command).
//!
//! ```text
//! cargo run --release --bin parinda-cli
//! parinda> load paper
//! parinda> workload sdss
//! parinda> budget 500
//! parinda> suggest indexes 2048 ilp
//! ```
//!
//! With `--trace-json <path>`, the whole run is recorded (as if
//! `profile on` were the first command) and a machine-readable
//! `parinda-trace/v1` profile is written to `<path>` on exit.
//!
//! `parinda-cli serve` runs the same console grammar as a daemon
//! instead (see `parinda-server`): many concurrent sessions over one
//! shared engine, each with its own budgets and cancellation scope.
//! In serve mode Ctrl-C triggers a graceful `server shutdown` rather
//! than cancelling a console run.
//!
//! ```text
//! parinda-cli serve --listen 127.0.0.1:7144 --load paper
//! ```

use std::io::{self, BufRead, Write};

use parinda::{Console, ConsoleReply, SharedEngine, Trace};
use parinda_server::{Server, ServerOptions};

/// SIGINT → cooperative cancellation, unix only. Uses the libc `signal`
/// symbol directly (declared here — no libc crate dependency); the
/// handler body is a single relaxed atomic store, which is
/// async-signal-safe.
#[cfg(unix)]
mod sigint {
    use parinda::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install(token: CancelToken) {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        if TOKEN.set(token).is_ok() {
            unsafe {
                signal(SIGINT, on_sigint);
            }
        }
    }
}

/// How the binary was asked to run: the interactive REPL (default) or
/// the multi-session daemon.
enum Mode {
    Repl { trace_json: Option<String> },
    Serve { listen: String, load: Option<String>, options: ServerOptions },
}

const USAGE: &str = "usage: parinda-cli [--trace-json <path>]\n\
       parinda-cli serve [--listen <addr>] [--load paper|laptop[:rows]|ddl:<path>]\n\
                         [--max-sessions <n>] [--max-budget-ms <ms>]";

/// Parse the CLI arguments into a [`Mode`].
fn parse_args() -> Result<Mode, String> {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(|a| a.as_str()) == Some("serve") {
        args.next();
        let mut listen = "127.0.0.1:0".to_string();
        let mut load = None;
        let mut options = ServerOptions::default();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--listen" => match args.next() {
                    Some(v) => listen = v,
                    None => return Err("--listen requires an address".into()),
                },
                "--load" => match args.next() {
                    Some(v) => load = Some(v),
                    None => return Err("--load requires a spec".into()),
                },
                "--max-sessions" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => options.max_sessions = n,
                    None => return Err("--max-sessions requires a count".into()),
                },
                "--max-budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(ms) => options.max_budget_ms = Some(ms),
                    None => return Err("--max-budget-ms requires milliseconds".into()),
                },
                other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
            }
        }
        return Ok(Mode::Serve { listen, load, options });
    }
    let mut trace_json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-json" => match args.next() {
                Some(p) => trace_json = Some(p),
                None => return Err("--trace-json requires a path".into()),
            },
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Mode::Repl { trace_json })
}

/// Build the daemon's shared engine from a `--load` spec.
fn build_engine(load: Option<&str>) -> Result<SharedEngine, String> {
    use parinda_workload::{generate_and_load, sdss_catalog, synthesize_stats, SdssScale};
    match load {
        None => Ok(SharedEngine::new(parinda::Catalog::new())),
        Some("paper") => {
            let (mut cat, tables) = sdss_catalog(SdssScale::paper());
            synthesize_stats(&mut cat, &tables);
            Ok(SharedEngine::new(cat))
        }
        Some(spec) if spec == "laptop" || spec.starts_with("laptop:") => {
            let rows = match spec.strip_prefix("laptop:") {
                None | Some("") => 20_000,
                Some(n) => n.parse::<u64>().map_err(|_| format!("bad row count in `{spec}`"))?,
            };
            let (mut cat, tables) = sdss_catalog(SdssScale::laptop(rows));
            let mut db = parinda::Database::new();
            generate_and_load(&mut cat, &mut db, &tables, 42);
            Ok(SharedEngine::with_database(cat, db))
        }
        Some(spec) => match spec.strip_prefix("ddl:") {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                SharedEngine::from_ddl(&text).map_err(|e| e.to_string())
            }
            None => Err(format!("unknown --load spec `{spec}` (paper|laptop[:rows]|ddl:<path>)")),
        },
    }
}

/// Daemon mode: bind, announce the port, serve until shutdown. Ctrl-C
/// cancels the *server's* shutdown token — per-connection advisor runs
/// get their own tokens, so one session's cancel never touches another.
fn serve_main(listen: &str, load: Option<&str>, options: ServerOptions) -> Result<(), String> {
    let engine = build_engine(load)?;
    let server = Server::bind(engine, listen, options).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {addr}");
    io::stdout().flush().ok();
    #[cfg(unix)]
    sigint::install(server.shutdown_token());
    server.run().map_err(|e| e.to_string())
}

fn main() {
    let mode = match parse_args() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let trace_json = match mode {
        Mode::Serve { listen, load, options } => {
            if let Err(e) = serve_main(&listen, load.as_deref(), options) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        Mode::Repl { trace_json } => trace_json,
    };
    println!("PARINDA interactive physical designer (type `help`)");
    let mut console = Console::new();
    // Keep our own handle: even if the user later types `profile off`
    // (which detaches the console's trace), everything recorded up to
    // that point is still exported.
    let run_trace = trace_json.as_ref().map(|_| {
        let t = Trace::recording();
        console.set_trace(t.clone());
        t
    });
    #[cfg(unix)]
    sigint::install(console.cancel_token().clone());
    let stdin = io::stdin();
    loop {
        print!("parinda> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                // Ctrl-C at the prompt: the token is armed; a fresh
                // prompt keeps the session alive.
                println!();
                continue;
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match console.run_line(&line) {
            ConsoleReply::Quit => break,
            ConsoleReply::Output(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            ConsoleReply::Error(e) => eprintln!("error [{}]: {e}", e.kind()),
        }
    }
    if let (Some(path), Some(trace)) = (trace_json, run_trace) {
        match std::fs::write(&path, trace.snapshot().to_json()) {
            Ok(()) => eprintln!("trace profile written to {path}"),
            Err(e) => eprintln!("error [io]: cannot write trace profile to {path}: {e}"),
        }
    }
}
