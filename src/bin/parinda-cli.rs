//! The PARINDA interactive console — a terminal rendition of the demo GUI
//! (paper Figures 2–3): load a database and workload, simulate what-if
//! features, evaluate benefits, and run the automatic advisors.
//!
//! ```text
//! cargo run --release --bin parinda-cli
//! parinda> load paper
//! parinda> workload sdss
//! parinda> whatif index w_objid photoobj objid
//! parinda> eval
//! parinda> suggest indexes 2048 ilp
//! ```

use std::io::{self, BufRead, Write};

use parinda::{
    AutoPartConfig, Design, Parallelism, Parinda, SelectionMethod, WhatIfIndex, WhatIfPartition,
};
use parinda_catalog::MetadataProvider;
use parinda_workload::{
    generate_and_load, parse_workload, sdss_catalog, sdss_workload, synthesize_stats, SdssScale,
};

/// One parsed console command.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    LoadPaper,
    LoadLaptop(u64),
    LoadDdl(String),
    WorkloadSdss,
    WorkloadFile(String),
    ShowTables,
    ShowIndexes,
    Describe(String),
    ShowWorkload,
    ShowDesign,
    Explain(String),
    Analyze(String),
    WhatIfIndex { name: String, table: String, columns: Vec<String> },
    WhatIfPartition { name: String, table: String, columns: Vec<String> },
    WhatIfDrop(String),
    ClearDesign,
    Eval,
    SuggestIndexes { budget_mb: u64, method: SelectionMethod },
    SuggestPartitions { replication_mb: Option<u64> },
    SuggestDrops,
    /// `threads <n|auto>` — `None` = auto-detect, `Some(n)` = fixed count.
    Threads(Option<usize>),
    ShowThreads,
    Help,
    Quit,
    Empty,
}

/// Parse one console line.
fn parse_command(line: &str) -> Result<Command, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(Command::Empty);
    }
    let words: Vec<&str> = trimmed.split_whitespace().collect();
    let lower: Vec<String> = words.iter().map(|w| w.to_ascii_lowercase()).collect();
    match lower[0].as_str() {
        "quit" | "exit" | "q" => Ok(Command::Quit),
        "help" | "?" => Ok(Command::Help),
        "load" => match lower.get(1).map(|s| s.as_str()) {
            Some("paper") => Ok(Command::LoadPaper),
            Some("laptop") => {
                let rows = lower
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(20_000);
                Ok(Command::LoadLaptop(rows))
            }
            Some("ddl") => words
                .get(2)
                .map(|p| Command::LoadDdl(p.to_string()))
                .ok_or_else(|| "usage: load ddl <path>".into()),
            _ => Err("usage: load paper | load laptop [rows] | load ddl <path>".into()),
        },
        "workload" => match lower.get(1).map(|s| s.as_str()) {
            Some("sdss") => Ok(Command::WorkloadSdss),
            Some("file") => words
                .get(2)
                .map(|p| Command::WorkloadFile(p.to_string()))
                .ok_or_else(|| "usage: workload file <path>".into()),
            _ => Err("usage: workload sdss | workload file <path>".into()),
        },
        "describe" | "d" => lower
            .get(1)
            .map(|t| Command::Describe(t.clone()))
            .ok_or_else(|| "usage: describe <table>".into()),
        "show" => match lower.get(1).map(|s| s.as_str()) {
            Some("tables") => Ok(Command::ShowTables),
            Some("indexes") => Ok(Command::ShowIndexes),
            Some("workload") => Ok(Command::ShowWorkload),
            Some("design") => Ok(Command::ShowDesign),
            _ => Err("usage: show tables|indexes|workload|design".into()),
        },
        "explain" => {
            let sql = trimmed[7..].trim();
            if sql.is_empty() {
                Err("usage: explain <sql>".into())
            } else {
                Ok(Command::Explain(sql.to_string()))
            }
        }
        "analyze" => {
            let sql = trimmed[7..].trim();
            if sql.is_empty() {
                Err("usage: analyze <sql>".into())
            } else {
                Ok(Command::Analyze(sql.to_string()))
            }
        }
        "whatif" => match lower.get(1).map(|s| s.as_str()) {
            Some("index") | Some("partition") => {
                if words.len() < 5 {
                    return Err(format!(
                        "usage: whatif {} <name> <table> <col[,col...]>",
                        lower[1]
                    ));
                }
                let name = lower[2].clone();
                let table = lower[3].clone();
                let columns: Vec<String> =
                    lower[4].split(',').map(|c| c.trim().to_string()).collect();
                if lower[1] == "index" {
                    Ok(Command::WhatIfIndex { name, table, columns })
                } else {
                    Ok(Command::WhatIfPartition { name, table, columns })
                }
            }
            Some("drop") => lower
                .get(2)
                .map(|i| Command::WhatIfDrop(i.clone()))
                .ok_or_else(|| "usage: whatif drop <index>".into()),
            _ => Err("usage: whatif index|partition|drop …".into()),
        },
        "clear" => Ok(Command::ClearDesign),
        "eval" => Ok(Command::Eval),
        "threads" => match lower.get(1).map(|s| s.as_str()) {
            None => Ok(Command::ShowThreads),
            Some("auto") => Ok(Command::Threads(None)),
            Some(n) => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .map(|n| Command::Threads(Some(n)))
                .ok_or_else(|| "usage: threads [<n>|auto]".into()),
        },
        "suggest" => match lower.get(1).map(|s| s.as_str()) {
            Some("indexes") => {
                let budget_mb = lower
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or("usage: suggest indexes <budget-mb> [ilp|greedy]")?;
                let method = match lower.get(3).map(|s| s.as_str()) {
                    Some("greedy") => SelectionMethod::Greedy,
                    _ => SelectionMethod::Ilp,
                };
                Ok(Command::SuggestIndexes { budget_mb, method })
            }
            Some("partitions") => Ok(Command::SuggestPartitions {
                replication_mb: lower.get(2).and_then(|s| s.parse().ok()),
            }),
            Some("drops") => Ok(Command::SuggestDrops),
            _ => Err(
                "usage: suggest indexes <mb> [ilp|greedy] | suggest partitions [mb] | suggest drops"
                    .into(),
            ),
        },
        other => Err(format!("unknown command `{other}` (try `help`)")),
    }
}

const HELP: &str = "\
commands:
  load paper                 SDSS catalog at paper scale (statistics only)
  load laptop [rows]         SDSS with generated, executable data
  load ddl <path>            schema from a CREATE TABLE/INDEX script
  workload sdss              the 30 prototypical SDSS queries
  workload file <path>       statements from a file (';'-separated)
  show tables|indexes|workload|design
  describe <table>           columns, statistics, indexes
  explain <sql>              EXPLAIN under the current design
  analyze <sql>              EXPLAIN ANALYZE (needs loaded data)
  whatif index <name> <table> <col[,col...]>
  whatif partition <name> <table> <col[,col...]>
  whatif drop <index>        simulate dropping a real index
  clear                      discard the what-if design
  eval                       evaluate the design over the workload
  suggest indexes <mb> [ilp|greedy]
  suggest partitions [replication-mb]
  suggest drops              real indexes the workload would not miss
  threads [<n>|auto]         advisor thread count (also: PARINDA_THREADS)
  quit";

struct Console {
    session: Option<Parinda>,
    workload: Vec<parinda::Select>,
    design: Design,
    /// Thread policy chosen with `threads`; applied to every session,
    /// including ones loaded later.
    par: Parallelism,
}

impl Console {
    fn new() -> Self {
        Console {
            session: None,
            workload: Vec::new(),
            design: Design::new(),
            par: Parallelism::auto(),
        }
    }

    /// Install a freshly loaded session, carrying over the thread policy.
    fn install(&mut self, mut session: Parinda) {
        session.set_parallelism(self.par);
        self.session = Some(session);
    }

    fn session(&self) -> Result<&Parinda, String> {
        self.session.as_ref().ok_or_else(|| "no database loaded (try `load paper`)".into())
    }

    fn run_command(&mut self, cmd: Command) -> Result<String, String> {
        match cmd {
            Command::Empty => Ok(String::new()),
            Command::Help => Ok(HELP.to_string()),
            Command::Quit => unreachable!("handled by the loop"),
            Command::LoadPaper => {
                let (mut cat, tables) = sdss_catalog(SdssScale::paper());
                synthesize_stats(&mut cat, &tables);
                let n = cat.all_tables().len();
                let gb = cat.total_size_bytes() as f64 / (1u64 << 30) as f64;
                self.install(Parinda::new(cat));
                Ok(format!("loaded SDSS paper-scale catalog: {n} tables, {gb:.1} GB simulated"))
            }
            Command::LoadDdl(path) => {
                let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
                let session = Parinda::from_ddl(&text).map_err(|e| e.to_string())?;
                let n = session.catalog().all_tables().len();
                self.install(session);
                Ok(format!("loaded {n} tables from {path}"))
            }
            Command::LoadLaptop(rows) => {
                let (mut cat, tables) = sdss_catalog(SdssScale::laptop(rows));
                let mut db = parinda::Database::new();
                generate_and_load(&mut cat, &mut db, &tables, 42);
                self.install(Parinda::with_database(cat, db));
                Ok(format!("loaded SDSS laptop-scale instance with {rows} PhotoObj rows"))
            }
            Command::WorkloadSdss => {
                self.workload = sdss_workload();
                Ok(format!("workload: {} queries", self.workload.len()))
            }
            Command::WorkloadFile(path) => {
                let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
                let wl = parse_workload(&text).map_err(|e| e.to_string())?;
                self.workload = wl.queries();
                Ok(format!("workload: {} queries from {path}", self.workload.len()))
            }
            Command::ShowTables => {
                let s = self.session()?;
                Ok(parinda_catalog::describe_catalog(s.catalog()))
            }
            Command::Describe(table) => {
                let s = self.session()?;
                let id = s
                    .catalog()
                    .table_by_name(&table)
                    .ok_or_else(|| format!("unknown table {table}"))?
                    .id;
                parinda_catalog::describe_table(s.catalog(), id)
                    .ok_or_else(|| "table vanished".into())
            }
            Command::ShowIndexes => {
                let s = self.session()?;
                let idx = s.catalog().all_indexes();
                if idx.is_empty() {
                    return Ok("no indexes".into());
                }
                let mut out = String::new();
                for i in idx {
                    let t = s.catalog().table(i.table).map(|t| t.name.clone()).unwrap_or_default();
                    let cols: Vec<String> = i
                        .key_columns
                        .iter()
                        .filter_map(|&c| {
                            s.catalog().table(i.table).map(|t| t.columns[c].name.clone())
                        })
                        .collect();
                    out.push_str(&format!(
                        "{:<24} on {:<12} ({})  {} pages\n",
                        i.name,
                        t,
                        cols.join(", "),
                        i.pages
                    ));
                }
                Ok(out)
            }
            Command::ShowWorkload => {
                if self.workload.is_empty() {
                    return Ok("no workload loaded".into());
                }
                Ok(self
                    .workload
                    .iter()
                    .enumerate()
                    .map(|(i, q)| format!("Q{:02}: {q}\n", i + 1))
                    .collect())
            }
            Command::ShowDesign => {
                let mut out = String::new();
                for i in &self.design.indexes {
                    out.push_str(&format!(
                        "index     {} on {} ({})\n",
                        i.name,
                        i.table,
                        i.columns.join(", ")
                    ));
                }
                for p in &self.design.partitions {
                    out.push_str(&format!(
                        "partition {} of {} ({})\n",
                        p.name,
                        p.table,
                        p.columns.join(", ")
                    ));
                }
                for d in &self.design.drop_indexes {
                    out.push_str(&format!("drop      {d}\n"));
                }
                if out.is_empty() {
                    out = "empty design".into();
                }
                Ok(out)
            }
            Command::Threads(spec) => {
                self.par = match spec {
                    Some(n) => Parallelism::fixed(n),
                    None => Parallelism::auto(),
                };
                if let Some(s) = self.session.as_mut() {
                    s.set_parallelism(self.par);
                }
                Ok(format!("advisors will use {} thread(s)", self.par.threads()))
            }
            Command::ShowThreads => {
                Ok(format!("advisors use {} thread(s)", self.par.threads()))
            }
            Command::Explain(sql) => self.session()?.explain_sql(&sql).map_err(|e| e.to_string()),
            Command::Analyze(sql) => {
                let s = self.session()?;
                let sel = parinda::parse_select(&sql).map_err(|e| e.to_string())?;
                let q = parinda_optimizer::bind(&sel, s.catalog()).map_err(|e| e.to_string())?;
                let plan = parinda_optimizer::plan_query(
                    &q,
                    s.catalog(),
                    &parinda_optimizer::CostParams::default(),
                    &parinda_optimizer::PlannerFlags::default(),
                )
                .map_err(|e| e.to_string())?;
                parinda_executor::explain_analyze(&plan, &q, s.catalog(), s.database())
                    .map_err(|e| format!("{e} (analyze needs `load laptop`)"))
            }
            Command::WhatIfIndex { name, table, columns } => {
                let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                self.design = std::mem::take(&mut self.design)
                    .with_index(WhatIfIndex::new(&name, &table, &cols));
                // validate eagerly so typos surface now
                if let Some(sess) = &self.session {
                    if let Err(e) = self.design.apply(sess.catalog()) {
                        self.design.indexes.pop();
                        return Err(e.to_string());
                    }
                }
                Ok(format!("what-if index {name} added"))
            }
            Command::WhatIfPartition { name, table, columns } => {
                let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                self.design = std::mem::take(&mut self.design)
                    .with_partition(WhatIfPartition::new(&name, &table, &cols));
                if let Some(sess) = &self.session {
                    if let Err(e) = self.design.apply(sess.catalog()) {
                        self.design.partitions.pop();
                        return Err(e.to_string());
                    }
                }
                Ok(format!("what-if partition {name} added"))
            }
            Command::WhatIfDrop(name) => {
                self.design = std::mem::take(&mut self.design).with_drop(&name);
                if let Some(sess) = &self.session {
                    if let Err(e) = self.design.apply(sess.catalog()) {
                        self.design.drop_indexes.pop();
                        return Err(e.to_string());
                    }
                }
                Ok(format!("simulating DROP INDEX {name}"))
            }
            Command::ClearDesign => {
                self.design = Design::new();
                Ok("design cleared".into())
            }
            Command::Eval => {
                let s = self.session()?;
                if self.workload.is_empty() {
                    return Err("no workload loaded".into());
                }
                let (report, rewritten) = s
                    .evaluate_design(&self.workload, &self.design)
                    .map_err(|e| e.to_string())?;
                let mut out = report.render();
                let changed: Vec<String> = self
                    .workload
                    .iter()
                    .zip(&rewritten)
                    .filter(|(a, b)| a != b)
                    .map(|(_, b)| format!("  {b};"))
                    .collect();
                if !changed.is_empty() {
                    out.push_str("\nrewritten queries:\n");
                    out.push_str(&changed.join("\n"));
                    out.push('\n');
                }
                Ok(out)
            }
            Command::SuggestIndexes { budget_mb, method } => {
                let s = self.session()?;
                if self.workload.is_empty() {
                    return Err("no workload loaded".into());
                }
                let sugg = s
                    .suggest_indexes(&self.workload, budget_mb << 20, method)
                    .map_err(|e| e.to_string())?;
                let mut out = String::new();
                for i in &sugg.indexes {
                    out.push_str(&format!(
                        "CREATE INDEX {} ON {} ({});  -- {:.1} MB\n",
                        i.name,
                        i.table,
                        i.columns.join(", "),
                        i.size_bytes as f64 / (1 << 20) as f64
                    ));
                }
                out.push('\n');
                out.push_str(&sugg.report.render());
                Ok(out)
            }
            Command::SuggestDrops => {
                let s = self.session()?;
                if self.workload.is_empty() {
                    return Err("no workload loaded".into());
                }
                let drops = s.suggest_drops(&self.workload).map_err(|e| e.to_string())?;
                if drops.is_empty() {
                    return Ok("every existing index earns its keep".into());
                }
                let mut out = String::new();
                for d in drops {
                    out.push_str(&format!(
                        "DROP INDEX {};  -- on {}, reclaims {:.1} MB, workload cost unchanged\n",
                        d.index,
                        d.table,
                        d.reclaimed_bytes as f64 / (1 << 20) as f64
                    ));
                }
                Ok(out)
            }
            Command::SuggestPartitions { replication_mb } => {
                let s = self.session()?;
                if self.workload.is_empty() {
                    return Err("no workload loaded".into());
                }
                let config = AutoPartConfig {
                    replication_limit_bytes: replication_mb
                        .map(|mb| (mb << 20) as i64)
                        .unwrap_or(i64::MAX),
                    ..Default::default()
                };
                let sugg = s
                    .suggest_partitions(&self.workload, config)
                    .map_err(|e| e.to_string())?;
                let mut out = String::new();
                for p in &sugg.partitions {
                    out.push_str(&format!(
                        "PARTITION {} of {} ({})\n",
                        p.name,
                        p.table,
                        p.columns.join(", ")
                    ));
                }
                out.push('\n');
                out.push_str(&sugg.report.render());
                Ok(out)
            }
        }
    }
}

fn main() {
    println!("PARINDA interactive physical designer (type `help`)");
    let mut console = Console::new();
    let stdin = io::stdin();
    loop {
        print!("parinda> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match parse_command(&line) {
            Ok(Command::Quit) => break,
            Ok(cmd) => match console.run_command(cmd) {
                Ok(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_core_commands() {
        assert_eq!(parse_command("load paper").unwrap(), Command::LoadPaper);
        assert_eq!(parse_command("load laptop 5000").unwrap(), Command::LoadLaptop(5000));
        assert_eq!(parse_command("workload sdss").unwrap(), Command::WorkloadSdss);
        assert_eq!(parse_command("  quit ").unwrap(), Command::Quit);
        assert_eq!(parse_command("").unwrap(), Command::Empty);
        assert_eq!(
            parse_command("suggest indexes 2048 greedy").unwrap(),
            Command::SuggestIndexes { budget_mb: 2048, method: SelectionMethod::Greedy }
        );
    }

    #[test]
    fn parses_whatif_commands() {
        assert_eq!(
            parse_command("whatif index w1 photoobj ra,dec").unwrap(),
            Command::WhatIfIndex {
                name: "w1".into(),
                table: "photoobj".into(),
                columns: vec!["ra".into(), "dec".into()],
            }
        );
        assert_eq!(
            parse_command("whatif drop i_old").unwrap(),
            Command::WhatIfDrop("i_old".into())
        );
        assert!(parse_command("whatif index w1").is_err());
    }

    #[test]
    fn parses_threads_command() {
        assert_eq!(parse_command("threads 4").unwrap(), Command::Threads(Some(4)));
        assert_eq!(parse_command("threads auto").unwrap(), Command::Threads(None));
        assert_eq!(parse_command("threads").unwrap(), Command::ShowThreads);
        assert!(parse_command("threads 0").is_err());
        assert!(parse_command("threads many").is_err());
    }

    #[test]
    fn threads_command_sticks_across_loads() {
        let mut c = Console::new();
        c.run_command(Command::Threads(Some(2))).unwrap();
        c.run_command(Command::LoadPaper).unwrap();
        assert_eq!(c.session.as_ref().unwrap().parallelism(), Parallelism::fixed(2));
        let out = c.run_command(Command::ShowThreads).unwrap();
        assert!(out.contains("2 thread"), "{out}");
    }

    #[test]
    fn explain_keeps_original_case() {
        match parse_command("explain SELECT ra FROM photoobj").unwrap() {
            Command::Explain(sql) => assert_eq!(sql, "SELECT ra FROM photoobj"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_commands_error() {
        assert!(parse_command("frobnicate").is_err());
        assert!(parse_command("load mars").is_err());
    }

    #[test]
    fn console_flow_paper_scale() {
        let mut c = Console::new();
        assert!(c.run_command(Command::Eval).is_err(), "needs a database");
        c.run_command(Command::LoadPaper).unwrap();
        c.run_command(Command::WorkloadSdss).unwrap();
        c.run_command(Command::WhatIfIndex {
            name: "w_objid".into(),
            table: "photoobj".into(),
            columns: vec!["objid".into()],
        })
        .unwrap();
        let out = c.run_command(Command::Eval).unwrap();
        assert!(out.contains("average benefit"), "{out}");
        let out = c.run_command(Command::ShowDesign).unwrap();
        assert!(out.contains("w_objid"));
        c.run_command(Command::ClearDesign).unwrap();
        assert_eq!(c.run_command(Command::ShowDesign).unwrap(), "empty design");
    }

    #[test]
    fn console_rejects_bad_whatif_eagerly() {
        let mut c = Console::new();
        c.run_command(Command::LoadPaper).unwrap();
        let r = c.run_command(Command::WhatIfIndex {
            name: "w".into(),
            table: "photoobj".into(),
            columns: vec!["no_such_column".into()],
        });
        assert!(r.is_err());
        // the bad feature must not linger in the design
        assert_eq!(c.run_command(Command::ShowDesign).unwrap(), "empty design");
    }
}
