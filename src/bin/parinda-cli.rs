//! The PARINDA interactive console — a terminal rendition of the demo GUI
//! (paper Figures 2–3): load a database and workload, simulate what-if
//! features, evaluate benefits, and run the automatic advisors.
//!
//! All command parsing and dispatch lives in [`parinda::Console`]; this
//! binary is only the REPL around it. Errors — including contained
//! internal panics — are printed with their taxonomy kind and the loop
//! continues: bad input never aborts the process.
//!
//! ```text
//! cargo run --release --bin parinda-cli
//! parinda> load paper
//! parinda> workload sdss
//! parinda> whatif index w_objid photoobj objid
//! parinda> eval
//! parinda> suggest indexes 2048 ilp
//! ```

use std::io::{self, BufRead, Write};

use parinda::{Console, ConsoleReply};

fn main() {
    println!("PARINDA interactive physical designer (type `help`)");
    let mut console = Console::new();
    let stdin = io::stdin();
    loop {
        print!("parinda> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match console.run_line(&line) {
            ConsoleReply::Quit => break,
            ConsoleReply::Output(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            ConsoleReply::Error(e) => eprintln!("error [{}]: {e}", e.kind()),
        }
    }
}
