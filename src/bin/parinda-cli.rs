//! The PARINDA interactive console — a terminal rendition of the demo GUI
//! (paper Figures 2–3): load a database and workload, simulate what-if
//! features, evaluate benefits, and run the automatic advisors.
//!
//! All command parsing and dispatch lives in [`parinda::Console`]; this
//! binary is only the REPL around it. Errors — including contained
//! internal panics — are printed with their taxonomy kind and the loop
//! continues: bad input never aborts the process.
//!
//! Ctrl-C does not kill the session: it cancels the console's shared
//! [`parinda::CancelToken`], so an advisor in flight stops at its next
//! checkpoint and returns its best-so-far design flagged degraded
//! (pressed at the prompt, it pre-arms cancellation of the next run,
//! like the `cancel` command).
//!
//! ```text
//! cargo run --release --bin parinda-cli
//! parinda> load paper
//! parinda> workload sdss
//! parinda> budget 500
//! parinda> suggest indexes 2048 ilp
//! ```
//!
//! With `--trace-json <path>`, the whole run is recorded (as if
//! `profile on` were the first command) and a machine-readable
//! `parinda-trace/v1` profile is written to `<path>` on exit.
//!
//! `parinda-cli serve` runs the same console grammar as a daemon
//! instead (see `parinda-server`): many concurrent sessions over one
//! shared engine, each with its own budgets and cancellation scope.
//! In serve mode Ctrl-C triggers a graceful `server shutdown` rather
//! than cancelling a console run.
//!
//! ```text
//! parinda-cli serve --listen 127.0.0.1:7144 --load paper
//! ```

use std::io::{self, BufRead, Write};

use parinda::{Console, ConsoleReply, SharedEngine, Trace};
use parinda_server::{Durability, Server, ServerOptions};

/// SIGINT → cooperative cancellation, unix only. Uses the libc `signal`
/// symbol directly (declared here — no libc crate dependency); the
/// handler body is a single relaxed atomic store, which is
/// async-signal-safe.
#[cfg(unix)]
mod sigint {
    use parinda::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install(token: CancelToken) {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        if TOKEN.set(token).is_ok() {
            unsafe {
                signal(SIGINT, on_sigint);
            }
        }
    }
}

/// How the binary was asked to run: the interactive REPL (default) or
/// the multi-session daemon.
enum Mode {
    Repl { trace_json: Option<String> },
    Serve {
        listen: String,
        load: Option<String>,
        data_dir: Option<String>,
        options: ServerOptions,
    },
}

const USAGE: &str = "usage: parinda-cli [--trace-json <path>]\n\
       parinda-cli serve [--listen <addr>] [--load paper|laptop[:rows]|ddl:<path>]\n\
                         [--data-dir <dir>] [--max-sessions <n>] [--max-budget-ms <ms>]";

/// Parse the CLI arguments into a [`Mode`].
fn parse_args() -> Result<Mode, String> {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(|a| a.as_str()) == Some("serve") {
        args.next();
        let mut listen = "127.0.0.1:0".to_string();
        let mut load = None;
        let mut data_dir = None;
        let mut options = ServerOptions::default();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--listen" => match args.next() {
                    Some(v) => listen = v,
                    None => return Err("--listen requires an address".into()),
                },
                "--load" => match args.next() {
                    Some(v) => load = Some(v),
                    None => return Err("--load requires a spec".into()),
                },
                "--data-dir" => match args.next() {
                    Some(v) => data_dir = Some(v),
                    None => return Err("--data-dir requires a directory".into()),
                },
                "--max-sessions" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => options.max_sessions = n,
                    None => return Err("--max-sessions requires a count".into()),
                },
                "--max-budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(ms) => options.max_budget_ms = Some(ms),
                    None => return Err("--max-budget-ms requires milliseconds".into()),
                },
                other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
            }
        }
        return Ok(Mode::Serve { listen, load, data_dir, options });
    }
    let mut trace_json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-json" => match args.next() {
                Some(p) => trace_json = Some(p),
                None => return Err("--trace-json requires a path".into()),
            },
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Mode::Repl { trace_json })
}

/// A serve-mode failure, split by *when* it happened: preflight errors
/// (bad flags, unreadable `ddl:` file, `--data-dir` naming a
/// non-directory) abort before the listener starts and exit with status
/// 2, like argument errors; runtime errors exit 1.
enum ServeError {
    Preflight(String),
    Runtime(String),
}

/// Resolve a `--load` spec into the *bootstrap spec* recorded in the
/// durability snapshot: `none`, `paper`, `laptop:<rows>`, or
/// `ddl\n<text>`. Reading the `ddl:` file happens here — before the
/// listener starts — so a missing or unreadable path aborts with a
/// typed error naming it (and a recovered daemon never re-reads the
/// file: the DDL text itself is the spec).
fn bootstrap_spec(load: Option<&str>) -> Result<String, ServeError> {
    match load {
        None => Ok("none".to_string()),
        Some("paper") => Ok("paper".to_string()),
        Some(spec) if spec == "laptop" || spec.starts_with("laptop:") => {
            let rows = match spec.strip_prefix("laptop:") {
                None | Some("") => 20_000,
                Some(n) => n
                    .parse::<u64>()
                    .map_err(|_| ServeError::Preflight(format!("bad row count in `{spec}`")))?,
            };
            Ok(format!("laptop:{rows}"))
        }
        Some(spec) => match spec.strip_prefix("ddl:") {
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    ServeError::Preflight(format!("cannot read ddl file {path}: {e}"))
                })?;
                Ok(format!("ddl\n{text}"))
            }
            None => Err(ServeError::Preflight(format!(
                "unknown --load spec `{spec}` (paper|laptop[:rows]|ddl:<path>)"
            ))),
        },
    }
}

/// Build the daemon's shared engine from a bootstrap spec (see
/// [`bootstrap_spec`] for the encoding).
fn engine_from_spec(spec: &str) -> Result<SharedEngine, String> {
    use parinda_workload::{generate_and_load, sdss_catalog, synthesize_stats, SdssScale};
    if spec == "none" {
        return Ok(SharedEngine::new(parinda::Catalog::new()));
    }
    if spec == "paper" {
        let (mut cat, tables) = sdss_catalog(SdssScale::paper());
        synthesize_stats(&mut cat, &tables);
        return Ok(SharedEngine::new(cat));
    }
    if let Some(rows) = spec.strip_prefix("laptop:") {
        let rows = rows.parse::<u64>().map_err(|_| format!("bad bootstrap spec `{spec}`"))?;
        let (mut cat, tables) = sdss_catalog(SdssScale::laptop(rows));
        let mut db = parinda::Database::new();
        generate_and_load(&mut cat, &mut db, &tables, 42);
        return Ok(SharedEngine::with_database(cat, db));
    }
    if let Some(text) = spec.strip_prefix("ddl\n") {
        return SharedEngine::from_ddl(text).map_err(|e| e.to_string());
    }
    Err(format!("unknown bootstrap spec `{}`", spec.lines().next().unwrap_or("")))
}

/// Daemon mode: bind, announce the port, serve until shutdown. Ctrl-C
/// cancels the *server's* shutdown token — per-connection advisor runs
/// get their own tokens, so one session's cancel never touches another.
///
/// With `--data-dir`, the daemon is durable: commands are journaled to a
/// metadata WAL and replayed on restart. A data dir that exists but is
/// not a directory is refused before the listener starts (exit 2); any
/// *later* durability failure — a corrupt store, an unwritable disk —
/// degrades the daemon to ephemeral with a warning instead of killing it.
fn serve_main(
    listen: &str,
    load: Option<&str>,
    data_dir: Option<&str>,
    options: ServerOptions,
) -> Result<(), ServeError> {
    let spec = bootstrap_spec(load)?;
    // Satellite preflight: refuse a non-directory data dir with the same
    // typed error + exit code as an unreadable ddl file.
    if let Some(dir) = data_dir {
        let p = std::path::Path::new(dir);
        if p.exists() && !p.is_dir() {
            return Err(ServeError::Preflight(format!("--data-dir {dir} is not a directory")));
        }
    }
    let durability = match data_dir {
        None => None,
        Some(dir) => {
            let path = std::path::PathBuf::from(dir);
            let spec_for_open = spec.clone();
            let opened = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                Durability::open(&path, &spec_for_open)
            }));
            match opened {
                Ok(Ok(d)) => Some(d),
                Ok(Err(e)) => {
                    eprintln!("DEGRADED: cannot open data dir {dir}: {e}; running ephemeral");
                    None
                }
                Err(_) => {
                    eprintln!("DEGRADED: recovery panicked in {dir}; running ephemeral");
                    None
                }
            }
        }
    };
    // The recorded bootstrap wins over the command line: a durable store
    // is a deterministic replay of *its own* history, not of new flags.
    let effective_spec = match &durability {
        Some(d) if d.bootstrap != spec => {
            eprintln!(
                "note: data dir records bootstrap `{}`; ignoring --load `{}`",
                d.bootstrap.lines().next().unwrap_or(""),
                spec.lines().next().unwrap_or("")
            );
            d.bootstrap.clone()
        }
        _ => spec,
    };
    let engine = engine_from_spec(&effective_spec).map_err(ServeError::Runtime)?;
    let server = match durability {
        Some(d) => Server::bind_durable(engine, listen, options, d)
            .map_err(|e| ServeError::Runtime(e.to_string()))?,
        None => {
            Server::bind(engine, listen, options).map_err(|e| ServeError::Runtime(e.to_string()))?
        }
    };
    let addr = server.local_addr().map_err(|e| ServeError::Runtime(e.to_string()))?;
    println!("listening on {addr}");
    io::stdout().flush().ok();
    #[cfg(unix)]
    sigint::install(server.shutdown_token());
    server.run().map(|_stats| ()).map_err(|e| ServeError::Runtime(e.to_string()))
}

fn main() {
    let mode = match parse_args() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let trace_json = match mode {
        Mode::Serve { listen, load, data_dir, options } => {
            match serve_main(&listen, load.as_deref(), data_dir.as_deref(), options) {
                Ok(()) => {}
                Err(ServeError::Preflight(e)) => {
                    eprintln!("error [io]: {e}");
                    std::process::exit(2);
                }
                Err(ServeError::Runtime(e)) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
        Mode::Repl { trace_json } => trace_json,
    };
    println!("PARINDA interactive physical designer (type `help`)");
    let mut console = Console::new();
    // Keep our own handle: even if the user later types `profile off`
    // (which detaches the console's trace), everything recorded up to
    // that point is still exported.
    let run_trace = trace_json.as_ref().map(|_| {
        let t = Trace::recording();
        console.set_trace(t.clone());
        t
    });
    #[cfg(unix)]
    sigint::install(console.cancel_token().clone());
    let stdin = io::stdin();
    loop {
        print!("parinda> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                // Ctrl-C at the prompt: the token is armed; a fresh
                // prompt keeps the session alive.
                println!();
                continue;
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match console.run_line(&line) {
            ConsoleReply::Quit => break,
            ConsoleReply::Output(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            ConsoleReply::Error(e) => eprintln!("error [{}]: {e}", e.kind()),
        }
    }
    if let (Some(path), Some(trace)) = (trace_json, run_trace) {
        match std::fs::write(&path, trace.snapshot().to_json()) {
            Ok(()) => eprintln!("trace profile written to {path}"),
            Err(e) => eprintln!("error [io]: cannot write trace profile to {path}: {e}"),
        }
    }
}
