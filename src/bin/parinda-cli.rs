//! The PARINDA interactive console — a terminal rendition of the demo GUI
//! (paper Figures 2–3): load a database and workload, simulate what-if
//! features, evaluate benefits, and run the automatic advisors.
//!
//! All command parsing and dispatch lives in [`parinda::Console`]; this
//! binary is only the REPL around it. Errors — including contained
//! internal panics — are printed with their taxonomy kind and the loop
//! continues: bad input never aborts the process.
//!
//! Ctrl-C does not kill the session: it cancels the console's shared
//! [`parinda::CancelToken`], so an advisor in flight stops at its next
//! checkpoint and returns its best-so-far design flagged degraded
//! (pressed at the prompt, it pre-arms cancellation of the next run,
//! like the `cancel` command).
//!
//! ```text
//! cargo run --release --bin parinda-cli
//! parinda> load paper
//! parinda> workload sdss
//! parinda> budget 500
//! parinda> suggest indexes 2048 ilp
//! ```
//!
//! With `--trace-json <path>`, the whole run is recorded (as if
//! `profile on` were the first command) and a machine-readable
//! `parinda-trace/v1` profile is written to `<path>` on exit.

use std::io::{self, BufRead, Write};

use parinda::{Console, ConsoleReply, Trace};

/// SIGINT → cooperative cancellation, unix only. Uses the libc `signal`
/// symbol directly (declared here — no libc crate dependency); the
/// handler body is a single relaxed atomic store, which is
/// async-signal-safe.
#[cfg(unix)]
mod sigint {
    use parinda::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install(token: CancelToken) {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        if TOKEN.set(token).is_ok() {
            unsafe {
                signal(SIGINT, on_sigint);
            }
        }
    }
}

/// Parse the CLI arguments; only `--trace-json <path>` is recognized.
fn parse_args() -> Result<Option<String>, String> {
    let mut args = std::env::args().skip(1);
    let mut trace_json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-json" => match args.next() {
                Some(p) => trace_json = Some(p),
                None => return Err("--trace-json requires a path".into()),
            },
            other => return Err(format!("unknown argument `{other}` (usage: parinda-cli [--trace-json <path>])")),
        }
    }
    Ok(trace_json)
}

fn main() {
    let trace_json = match parse_args() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!("PARINDA interactive physical designer (type `help`)");
    let mut console = Console::new();
    // Keep our own handle: even if the user later types `profile off`
    // (which detaches the console's trace), everything recorded up to
    // that point is still exported.
    let run_trace = trace_json.as_ref().map(|_| {
        let t = Trace::recording();
        console.set_trace(t.clone());
        t
    });
    #[cfg(unix)]
    sigint::install(console.cancel_token().clone());
    let stdin = io::stdin();
    loop {
        print!("parinda> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                // Ctrl-C at the prompt: the token is armed; a fresh
                // prompt keeps the session alive.
                println!();
                continue;
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match console.run_line(&line) {
            ConsoleReply::Quit => break,
            ConsoleReply::Output(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            ConsoleReply::Error(e) => eprintln!("error [{}]: {e}", e.kind()),
        }
    }
    if let (Some(path), Some(trace)) = (trace_json, run_trace) {
        match std::fs::write(&path, trace.snapshot().to_json()) {
            Ok(()) => eprintln!("trace profile written to {path}"),
            Err(e) => eprintln!("error [io]: cannot write trace profile to {path}: {e}"),
        }
    }
}
