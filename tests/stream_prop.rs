//! Property suite for the streaming layer: the decay/merge/evict
//! arithmetic and the drift metric are pure integer functions, so their
//! algebraic contracts hold for *every* input, not just the scenarios
//! the simulation harness replays.
//!
//! Generation is deterministic (vendored proptest, fixed seed,
//! `PROPTEST_SEED` to override), so a failure reproduces exactly.

use proptest::prelude::*;

use parinda::{Console, ConsoleReply, Trace};
use parinda_stream::{drift_ppm, ConstraintStore, StreamAccumulator, DRIFT_SCALE, WEIGHT_SCALE};

/// A small pool of parseable statement templates over distinct shapes
/// (literals are normalized away by fingerprinting, so each entry is
/// one template no matter the constant).
const TEMPLATES: [&str; 5] = [
    "SELECT id FROM obs WHERE ra BETWEEN 1 AND 2",
    "SELECT id FROM obs WHERE dec > 0.5",
    "SELECT id, ra FROM obs WHERE flags = 3",
    "SELECT id FROM src WHERE mag <= 3",
    "SELECT mag FROM src WHERE id = 7",
];

/// An epoch's worth of feeds: indexes into [`TEMPLATES`].
fn feeds() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..TEMPLATES.len(), 0..24)
}

/// Distributions for the drift metric, normalized to ppm shares of the
/// total mass exactly as the accumulator's `distribution()` does — the
/// DRIFT_SCALE bound is a contract over *normalized* inputs.
fn dist() -> impl Strategy<Value = Vec<(String, u64)>> {
    proptest::collection::vec(("[a-d]{1,2}", 1u64..2_000_000), 0..6).prop_map(|pairs| {
        let mut m = std::collections::BTreeMap::new();
        for (k, v) in pairs {
            *m.entry(k).or_insert(0u64) += v;
        }
        let total: u64 = m.values().sum();
        m.into_iter().map(|(k, v)| (k, v * parinda_stream::DRIFT_SCALE / total.max(1))).collect()
    })
}

/// Snapshot of the live template state that must be feed-order-free.
fn state(acc: &StreamAccumulator) -> Vec<(String, u64, u64)> {
    let mut s: Vec<(String, u64, u64)> =
        acc.templates().iter().map(|t| (t.fingerprint.clone(), t.weight_fp, t.members)).collect();
    s.sort();
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Feeding order within an epoch is irrelevant: any permutation of
    /// the same multiset of statements lands on identical fingerprints,
    /// decayed weights, member counts, and epoch summary.
    #[test]
    fn decayed_weights_are_feed_order_independent(idx in feeds(), seed in any::<u64>()) {
        let mut shuffled = idx.clone();
        // deterministic Fisher–Yates driven by the generated seed
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let trace = Trace::disabled();
        let mut a = StreamAccumulator::new();
        let mut b = StreamAccumulator::new();
        for &i in &idx { a.feed(TEMPLATES[i]).unwrap(); }
        for &i in &shuffled { b.feed(TEMPLATES[i]).unwrap(); }
        let sa = a.advance_epoch(&trace).unwrap();
        let sb = b.advance_epoch(&trace).unwrap();
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(state(&a), state(&b));
    }

    /// A template that goes silent decays strictly monotonically and is
    /// eventually evicted — stale workload shapes cannot pin the design
    /// forever.
    #[test]
    fn silent_templates_shrink_monotonically_and_vanish(idx in feeds()) {
        let trace = Trace::disabled();
        let mut acc = StreamAccumulator::new();
        for &i in &idx { acc.feed(TEMPLATES[i]).unwrap(); }
        acc.advance_epoch(&trace).unwrap();
        let mut prev: Vec<(String, u64, u64)> = state(&acc);
        // weight halves each silent epoch; the heaviest possible
        // template (23 feeds = 23·WEIGHT_SCALE) falls below the 1%
        // eviction threshold within 12 halvings (23e6 >> 12 < 1e4)
        for _ in 0..12 {
            acc.advance_epoch(&trace).unwrap();
            let cur = state(&acc);
            for (fp, w, _) in &cur {
                let old = prev.iter().find(|(pfp, ..)| pfp == fp);
                prop_assert!(old.is_some(), "template {} appeared from nowhere", fp);
                let &(_, old_w, _) = old.unwrap();
                prop_assert!(*w < old_w, "silent template {} did not shrink: {} -> {}", fp, old_w, w);
            }
            prev = cur;
        }
        prop_assert!(acc.templates().is_empty(), "silent templates survived 12 decay epochs");
        prop_assert_eq!(acc.epoch(), 13);
    }

    /// The drift metric is symmetric, zero on identical distributions,
    /// and bounded by [`DRIFT_SCALE`].
    #[test]
    fn drift_is_symmetric_bounded_and_zero_on_identity(a in dist(), b in dist()) {
        prop_assert_eq!(drift_ppm(&a, &b), drift_ppm(&b, &a));
        prop_assert_eq!(drift_ppm(&a, &a), 0);
        prop_assert_eq!(drift_ppm(&b, &b), 0);
        prop_assert!(drift_ppm(&a, &b) <= DRIFT_SCALE);
    }

    /// Pinning and banning the same name (in either order) is a typed
    /// constraint error, never a panic, and leaves the store unchanged.
    #[test]
    fn pin_ban_same_name_is_a_typed_error(name in "[a-z_]{1,12}(\\([a-z_, ]{1,16}\\))?") {
        let mut store = ConstraintStore::new();
        store.pin(&name).unwrap();
        let err = store.ban(&name).expect_err("ban of a pinned name must error");
        prop_assert!(err.to_string().contains("pinned"), "{}", err);
        prop_assert_eq!(store.pinned().count(), 1);
        prop_assert_eq!(store.banned().count(), 0);

        let mut store = ConstraintStore::new();
        store.ban(&name).unwrap();
        let err = store.pin(&name).expect_err("pin of a banned name must error");
        prop_assert!(err.to_string().contains("banned"), "{}", err);

        // and through the console: `error [advisor]:`, session usable after
        let mut c = Console::new();
        match c.run_line(&format!("pin {name}")) {
            ConsoleReply::Output(_) => {}
            other => panic!("pin rejected a valid name: {other:?}"),
        }
        match c.run_line(&format!("ban {name}")) {
            ConsoleReply::Error(e) => prop_assert_eq!(e.kind(), "advisor"),
            other => panic!("conflicting ban accepted: {other:?}"),
        }
        match c.run_line("drift") {
            ConsoleReply::Output(out) => prop_assert!(out.contains("drift:")),
            other => panic!("console unusable after constraint error: {other:?}"),
        }
    }

    /// Epoch summaries stay internally consistent under arbitrary feed
    /// sequences split across two epochs: total weight is the sum of
    /// live template weights, members never exceed statements fed, and
    /// the first epoch's drift is maximal by convention whenever
    /// anything arrived.
    #[test]
    fn epoch_summaries_are_internally_consistent(e1 in feeds(), e2 in feeds()) {
        let trace = Trace::disabled();
        let mut acc = StreamAccumulator::new();
        for &i in &e1 { acc.feed(TEMPLATES[i]).unwrap(); }
        let s1 = acc.advance_epoch(&trace).unwrap();
        if !e1.is_empty() {
            prop_assert_eq!(s1.drift_ppm, DRIFT_SCALE, "first epoch drift is maximal");
        }
        for &i in &e2 { acc.feed(TEMPLATES[i]).unwrap(); }
        let s2 = acc.advance_epoch(&trace).unwrap();
        prop_assert_eq!(acc.statements_fed(), (e1.len() + e2.len()) as u64);
        let live_weight: u64 = acc.templates().iter().map(|t| t.weight_fp).sum();
        prop_assert_eq!(s2.total_weight_fp, live_weight);
        let members: u64 = acc.templates().iter().map(|t| t.members).sum();
        prop_assert!(members <= acc.statements_fed());
        prop_assert!(s2.total_weight_fp <= acc.statements_fed() * WEIGHT_SCALE);
    }
}
