//! Generality check: every PARINDA component must work unchanged on the
//! retail schema (nothing may be SDSS-specific).

use parinda::{AutoPartConfig, Design, Parinda, SelectionMethod, WhatIfIndex, WhatIfPartition};
use parinda_workload::{retail_catalog, retail_load, retail_workload};

fn paper_session() -> Parinda {
    // statistics-only retail instance at a few million orders
    let (mut cat, tables) = retail_catalog(3_000_000);
    // synthesize simple statistics: unique clustered keys, categorical
    // dimensions, uniform numerics
    use parinda_catalog::{ColumnStats, Datum};
    let tables_list = [tables.customer, tables.product, tables.orders, tables.lineitem];
    for tid in tables_list {
        let t = cat.table(tid).unwrap().clone();
        for (i, col) in t.columns.iter().enumerate() {
            let stats = if col.name.ends_with("key") && t.primary_key.first() == Some(&i) {
                ColumnStats {
                    null_frac: 0.0,
                    n_distinct: -1.0,
                    avg_width: 8.0,
                    mcv: vec![],
                    histogram: (0..=100)
                        .map(|k| Datum::Int(t.row_count as i64 * k / 100))
                        .collect(),
                    correlation: 1.0,
                }
            } else if col.name.ends_with("key") {
                ColumnStats {
                    null_frac: 0.0,
                    n_distinct: -0.3,
                    avg_width: 8.0,
                    mcv: vec![],
                    histogram: (0..=100)
                        .map(|k| Datum::Int(t.row_count as i64 * k / 100))
                        .collect(),
                    correlation: 0.2,
                }
            } else if matches!(col.name.as_str(), "status" | "priority" | "segment" | "nation" | "brand" | "category") {
                ColumnStats {
                    null_frac: 0.0,
                    n_distinct: 10.0,
                    avg_width: 2.0,
                    mcv: (0..5).map(|v| (Datum::Int(v), 0.2)).collect(),
                    histogram: vec![],
                    correlation: 0.0,
                }
            } else {
                ColumnStats {
                    null_frac: 0.0,
                    n_distinct: -0.5,
                    avg_width: col.avg_width,
                    mcv: vec![],
                    histogram: (0..=100)
                        .map(|k| Datum::Float(k as f64 * 4_000.0))
                        .collect(),
                    correlation: 0.05,
                }
            };
            cat.set_column_stats(tid, i, stats);
        }
    }
    Parinda::new(cat)
}

use parinda_catalog::MetadataProvider;

#[test]
fn index_advisor_works_on_retail() {
    let session = paper_session();
    let wl = retail_workload();
    let budget = session.catalog().total_size_bytes() / 5;
    let sugg = session.suggest_indexes(&wl, budget, SelectionMethod::Ilp).unwrap();
    assert!(!sugg.indexes.is_empty());
    // the retail mix is aggregate-heavy; indexes rescue the selective
    // minority of queries, so the workload-level factor is modest
    assert!(sugg.report.speedup() > 1.1, "speedup {}", sugg.report.speedup());
    // the point lookup must be rescued by an orderkey index
    assert!(
        sugg.report.per_query[0].speedup() > 50.0,
        "{:?}",
        sugg.report.per_query[0]
    );
}

#[test]
fn autopart_works_on_retail() {
    let session = paper_session();
    let wl = retail_workload();
    let sugg = session.suggest_partitions(&wl, AutoPartConfig::default()).unwrap();
    // retail tables are narrow compared to PhotoObj; partitioning may or
    // may not pay off, but it must converge and never hurt
    assert!(sugg.report.speedup() >= 1.0);
    for q in &sugg.report.per_query {
        assert!(q.cost_after <= q.cost_before * 1.0001, "{}", q.sql);
    }
}

#[test]
fn interactive_design_works_on_retail() {
    let session = paper_session();
    let wl = retail_workload();
    let design = Design::new()
        .with_index(WhatIfIndex::new("w_orderdate", "orders", &["orderdate"]))
        .with_index(WhatIfIndex::new("w_shipdate", "lineitem", &["shipdate"]))
        .with_partition(WhatIfPartition::new(
            "orders_slim",
            "orders",
            &["custkey", "orderdate", "totalprice"],
        ));
    let (report, _) = session.evaluate_design(&wl, &design).unwrap();
    assert!(report.speedup() > 1.0, "{}", report.speedup());
}

#[test]
fn execution_pipeline_works_on_retail() {
    let (mut cat, tables) = retail_catalog(2_000);
    let mut db = parinda::Database::new();
    retail_load(&mut cat, &mut db, &tables, 3);
    let mut session = Parinda::with_database(cat, db);
    let wl = retail_workload();

    // run everything before and after materializing suggestions
    let run = |s: &Parinda| -> Vec<usize> {
        use parinda_executor::execute;
        use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
        wl.iter()
            .map(|q| {
                let b = bind(q, s.catalog()).unwrap();
                let p = plan_query(&b, s.catalog(), &CostParams::default(), &PlannerFlags::default())
                    .unwrap();
                execute(&p, s.catalog(), s.database()).unwrap().len()
            })
            .collect()
    };
    let before = run(&session);
    let sugg = session
        .suggest_indexes(&wl, 1 << 30, SelectionMethod::Ilp)
        .unwrap();
    session.materialize_indexes(&sugg).unwrap();
    let after = run(&session);
    assert_eq!(before, after, "row counts must not depend on the design");
}
