//! Workload-compression and warm-start equivalence suite (the E10
//! scaling pipeline's correctness contracts).
//!
//! Two guarantees are pinned here:
//!
//! * **Clustering is advising-invariant** — advising the compressed,
//!   weighted template set selects the same physical design as advising
//!   the raw statement stream, and the weighted totals match the raw
//!   sums up to float re-association (`w·c` vs `c + c + …`).
//! * **The warm start is a pure accelerator** — the greedy incumbent
//!   never changes a selected design or a proven optimum; it only
//!   shrinks the branch-and-bound search, which the trace counters
//!   (`solver_nodes`, `bnb_pruned_by_incumbent`) make observable.

use parinda::{Counter, IlpOptions, IndexSuggestion, Parallelism, Parinda, SelectionMethod, Trace};
use parinda_workload::{
    compress_workload, fingerprint, generate_retail_stream, generate_sdss_stream, retail_catalog,
    retail_load, sdss_catalog, sdss_workload, synthesize_stats, SdssScale, Workload,
};
use proptest::prelude::*;

fn sdss_session() -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    Parinda::new(cat)
}

fn retail_session() -> Parinda {
    let (mut cat, tables) = retail_catalog(2_000);
    let mut db = parinda::Database::new();
    retail_load(&mut cat, &mut db, &tables, 3);
    Parinda::with_database(cat, db)
}

/// A design stripped of naming: (table, key columns, size). Raw and
/// compressed runs may number their suggestions differently, but must
/// pick the same physical indexes.
fn design(s: &IndexSuggestion) -> Vec<(String, Vec<String>, u64)> {
    let mut d: Vec<_> =
        s.indexes.iter().map(|i| (i.table.clone(), i.columns.clone(), i.size_bytes)).collect();
    d.sort();
    d
}

/// Relative-tolerance comparison. `rel = 1e-9` is the re-association
/// bound (`w·c` vs `c + c + …` over a few hundred terms); looser bounds
/// are for the documented lossiness of literal-erasing clustering.
fn assert_close(a: f64, b: f64, rel: f64, what: &str) {
    let tol = rel * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b} (|Δ| = {})", (a - b).abs());
}

/// Clustering is **exact** when every member of a cluster is the same
/// statement (same literals): the template's `w·cost` is the raw sum up
/// to re-association. For literal-*varied* streams (the E10 input) the
/// template is costed at its representative's literals, so the totals
/// agree only up to the selectivity spread within a cluster — a small,
/// bounded approximation that is the price of the 1000x compression.
fn check_advising_invariant(mk: fn() -> Parinda, stream: &Workload, rel: f64, schema: &str) {
    let session = {
        let mut s = mk();
        s.set_parallelism(Parallelism::fixed(1));
        s.set_trace(Trace::recording());
        s
    };
    let budget = 2_u64 << 30;
    let options = IlpOptions::default();

    // Reference: advise the raw stream, one query per statement.
    let raw = session
        .suggest_indexes_with(&stream.queries(), budget, SelectionMethod::Ilp, &options)
        .expect("raw advising");

    // Same session, compressed path: templates with summed weights.
    let (folded, compressed) = session
        .suggest_indexes_compressed(stream, budget, SelectionMethod::Ilp, &options)
        .expect("compressed advising");

    assert!(compressed.merged() > 0, "{schema} stream should actually cluster");
    assert_eq!(compressed.len() + compressed.merged(), stream.len());
    let snap = session.trace().snapshot();
    assert!(
        snap.counter(Counter::TemplatesMerged) >= compressed.merged() as u64,
        "{schema}: clustering ran untraced"
    );
    assert!(snap.counter(Counter::MatrixNnz) > 0, "{schema}: no benefit cells materialized");

    assert!(raw.proven_optimal, "{schema}: raw run not proven optimal");
    assert!(folded.proven_optimal, "{schema}: folded run not proven optimal");

    // Both formulations solve the same weighted objective, so their
    // totals must agree up to re-association — but the 160-row and
    // 24-row programs may tie-break differently among equally good
    // vertices (e.g. a zero-benefit index included for free), so the
    // *designs* are compared by quality, not by identity: each
    // proven-optimal design, what-if-evaluated over the raw stream,
    // must achieve the same workload cost.
    assert_close(
        raw.report.total_before(),
        folded.report.total_before(),
        rel,
        &format!("{schema} total cost before"),
    );
    assert_close(
        raw.report.total_after(),
        folded.report.total_after(),
        rel,
        &format!("{schema} total cost after"),
    );
    let raw_queries = stream.queries();
    let whatif_cost = |s: &IndexSuggestion| {
        let design = parinda::Design {
            indexes: s
                .indexes
                .iter()
                .map(|i| {
                    let cols: Vec<&str> = i.columns.iter().map(String::as_str).collect();
                    parinda::WhatIfIndex::new(&i.name, &i.table, &cols)
                })
                .collect(),
            ..Default::default()
        };
        let (report, _) = session.evaluate_design(&raw_queries, &design).expect("what-if eval");
        report.total_after()
    };
    assert_close(
        whatif_cost(&raw),
        whatif_cost(&folded),
        rel,
        &format!("{schema}: raw-optimal vs compressed-optimal design quality"),
    );
}

/// An exact-duplicate stream: each of the 30 SDSS workload statements
/// repeated a deterministic number of times. Every cluster member is
/// literally identical, so compressed advising must equal the raw
/// weighted sum to re-association precision.
fn duplicated_sdss_stream() -> Workload {
    let base = sdss_workload();
    let mut entries = Vec::new();
    for round in 0..4usize {
        for (i, q) in base.iter().enumerate() {
            if i % 4 + 1 > round {
                entries.push(parinda_workload::WorkloadEntry { query: q.clone(), weight: 1.0 });
            }
        }
    }
    Workload { entries }
}

#[test]
fn exact_duplicate_stream_compresses_losslessly() {
    let stream = duplicated_sdss_stream();
    // setup guard: the 30 base statements must not merge with EACH
    // OTHER (that would mix literals and break exactness)
    let base_templates = compress_workload(&Workload {
        entries: sdss_workload()
            .into_iter()
            .map(|q| parinda_workload::WorkloadEntry { query: q, weight: 1.0 })
            .collect(),
    });
    assert_eq!(base_templates.len(), 30, "base SDSS statements unexpectedly share a fingerprint");
    check_advising_invariant(sdss_session, &stream, 1e-9, "sdss-duplicates");
}

#[test]
fn sdss_compressed_advising_matches_raw_stream() {
    check_advising_invariant(sdss_session, &generate_sdss_stream(160, 7), 5e-2, "sdss");
}

#[test]
fn retail_compressed_advising_matches_raw_stream() {
    check_advising_invariant(retail_session, &generate_retail_stream(160, 7), 5e-2, "retail");
}

/// The greedy incumbent is sound at every E4 storage budget: same
/// design, same optimality verdict, bit-identical totals — and the warm
/// search never expands more branch-and-bound nodes than the cold one,
/// strictly fewer in aggregate, with at least one node pruned against
/// the seeded incumbent.
#[test]
fn warm_start_never_worsens_the_proven_optimum() {
    let wl = sdss_workload();
    let run = |mb: u64, warm: bool| {
        let mut session = sdss_session();
        session.set_parallelism(Parallelism::fixed(1));
        session.set_trace(Trace::recording());
        let options = IlpOptions { warm_start: warm, ..Default::default() };
        let sugg = session
            .suggest_indexes_with(&wl, mb << 20, SelectionMethod::Ilp, &options)
            .expect("budgeted ILP");
        let snap = session.trace().snapshot();
        (sugg, snap.counter(Counter::SolverNodes), snap.counter(Counter::BnbPrunedByIncumbent))
    };

    let (mut nodes_warm, mut nodes_cold, mut pruned) = (0u64, 0u64, 0u64);
    for mb in [400u64, 1200, 2120] {
        let (warm, wn, wp) = run(mb, true);
        let (cold, cn, _) = run(mb, false);
        assert_eq!(design(&warm), design(&cold), "warm start changed the design at {mb} MB");
        assert_eq!(
            warm.proven_optimal, cold.proven_optimal,
            "warm start changed the optimality verdict at {mb} MB"
        );
        assert_eq!(
            warm.report.total_after().to_bits(),
            cold.report.total_after().to_bits(),
            "warm start changed the achieved cost at {mb} MB"
        );
        assert!(wn <= cn, "warm start expanded more nodes at {mb} MB: {wn} > {cn}");
        nodes_warm += wn;
        nodes_cold += cn;
        pruned += wp;
    }
    assert!(
        nodes_warm < nodes_cold,
        "warm start never shrank the search: {nodes_warm} vs {nodes_cold} nodes"
    );
    assert!(pruned > 0, "the incumbent never pruned a node across the whole sweep");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Structural clustering invariants over randomized generated streams
    // on both schemas: compression regroups, never drops or rescales.
    #[test]
    fn clustering_preserves_weight_and_membership(
        n in 20usize..300,
        seed in 0u64..1_000,
        retail in any::<bool>(),
    ) {
        let stream =
            if retail { generate_retail_stream(n, seed) } else { generate_sdss_stream(n, seed) };
        let c = compress_workload(&stream);
        prop_assert_eq!(c.raw_statements, n);
        prop_assert_eq!(c.len() + c.merged(), n);
        // stream statements all weigh 1.0, so the totals are integers
        // and the sums are exact
        let total: f64 = c.weights().iter().sum();
        prop_assert_eq!(total, n as f64);
        prop_assert_eq!(c.raw_weight, n as f64);
        for t in &c.templates {
            prop_assert!(t.weight >= 1.0, "template weight {} < 1", t.weight);
            prop_assert_eq!(t.members as f64, t.weight);
            // the representative re-fingerprints to the key it clustered under
            prop_assert_eq!(&fingerprint(&t.query.to_string()), &t.fingerprint);
        }
        // surviving templates are pairwise distinct
        let mut keys: Vec<&str> = c.templates.iter().map(|t| t.fingerprint.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), c.len());
    }
}
