//! Golden pinning of the user-facing surfaces: the deterministic-mode
//! E1/E3 experiment tables and a scripted console transcript (including
//! a `DEGRADED:` budget line and a typed `error [kind]:` line).
//!
//! Timing-derived text (durations, percentages) is scrubbed to stable
//! placeholders before diffing; everything else — costs, counts, table
//! structure, error text — must match byte for byte.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! PARINDA_BLESS=1 cargo test --test golden
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use parinda::{Console, ConsoleReply};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("PARINDA_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden {} missing; regenerate with PARINDA_BLESS=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "\noutput drifted from tests/goldens/{name}; if the change is intentional, \
         rebless with PARINDA_BLESS=1 cargo test --test golden"
    );
}

/// Is `tok` a duration token like `13.6us`, `4.78ms`, `321ns`, `2.1s`?
fn is_time_token(tok: &str) -> bool {
    for unit in ["ns", "µs", "us", "ms", "s"] {
        if let Some(num) = tok.strip_suffix(unit) {
            if !num.is_empty() && num.parse::<f64>().is_ok() {
                return true;
            }
        }
    }
    false
}

/// Scrub nondeterministic tokens: durations -> `<time>`, percentages ->
/// `<pct>`, `12.3 ms` two-token durations -> `<time>`, and table rules
/// to a fixed width. Whitespace is collapsed because column widths
/// follow the (scrubbed) cell contents.
fn scrub(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let mut scrubbed: Vec<String> = Vec::with_capacity(toks.len());
        let mut i = 0;
        while i < toks.len() {
            let t = toks[i];
            let bare = t.trim_end_matches([':', ',', ';']);
            if bare.chars().all(|c| c == '-') && bare.len() >= 3 {
                scrubbed.push("---".into());
            } else if is_time_token(bare) {
                scrubbed.push("<time>".into());
            } else if bare.ends_with('%')
                && bare.trim_end_matches('%').trim_start_matches(['+', '-']).parse::<f64>().is_ok()
            {
                scrubbed.push("<pct>".into());
            } else if bare.parse::<f64>().is_ok()
                && toks
                    .get(i + 1)
                    .map(|n| {
                        let u = n.trim_end_matches([':', ',', ';']);
                        u == "ms" || u == "s" || u == "us" || u == "ns"
                    })
                    .unwrap_or(false)
            {
                scrubbed.push("<time>".into());
                i += 2; // consumed the unit token too
                continue;
            } else {
                scrubbed.push(t.to_string());
            }
            i += 1;
        }
        out.push_str(&scrubbed.join(" "));
        out.push('\n');
    }
    out
}

/// E1's estimated table in deterministic mode: advisor-chosen feature
/// counts and estimated speedups per storage budget.
#[test]
fn golden_e1_estimated_table() {
    check_golden("e1.txt", &parinda_bench::experiments::e1_report(true));
}

/// E3 in deterministic mode: timing cells are `-` placeholders; the
/// traced pipeline counters (optimizer invocations, cache hits/misses)
/// are exact and pinned.
#[test]
fn golden_e3_report() {
    check_golden("e3.txt", &parinda_bench::experiments::e3_report(true));
}

/// A scripted interactive session, end to end: loading, the clustering
/// summary (`workload stats`), what-if design, profiling, a
/// budget-degraded advisor run (`DEGRADED:`), a typed error line, and
/// the continuous-tuning verbs (feed/epoch/drift, pin/ban, a degraded
/// auto re-advise, and a pin∧ban constraint error) — exactly what a DBA
/// sees at the prompt.
#[test]
fn golden_console_transcript() {
    let script = [
        "load paper",
        "workload sdss",
        "workload stats",
        "threads 1",
        "profile on",
        "whatif index w_objid photoobj objid",
        "show design",
        "explain SELECT ra, dec FROM photoobj WHERE objid = 42",
        "budget rounds 1",
        "suggest partitions",
        "budget off",
        "explain SELECT nope FROM nowhere",
        "advise auto on",
        "advise budget 64",
        "pin photoobj(objid)",
        "ban photoobj(dec)",
        "feed SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20",
        "feed SELECT objid FROM photoobj WHERE ra BETWEEN 30 AND 40",
        "feed SELECT objid FROM photoobj WHERE dec > 5",
        "budget rounds 1",
        "epoch",
        "budget off",
        "drift",
        "ban photoobj(objid)",
        "unpin photoobj(objid)",
        "unban photoobj(dec)",
        "profile show",
        "profile off",
        "quit",
    ];
    let mut console = Console::new();
    let mut transcript = String::new();
    for cmd in script {
        let _ = writeln!(transcript, "parinda> {cmd}");
        match console.run_line(cmd) {
            ConsoleReply::Quit => {
                transcript.push_str("bye\n");
            }
            ConsoleReply::Output(out) => {
                if !out.is_empty() {
                    let _ = writeln!(transcript, "{}", out.trim_end());
                }
            }
            ConsoleReply::Error(e) => {
                let _ = writeln!(transcript, "error [{}]: {e}", e.kind());
            }
        }
    }
    let scrubbed = scrub(&transcript);
    assert!(scrubbed.contains("DEGRADED:"), "transcript exercises a degraded run:\n{scrubbed}");
    assert!(scrubbed.contains("error ["), "transcript exercises a typed error:\n{scrubbed}");
    check_golden("console.txt", &scrubbed);
}
