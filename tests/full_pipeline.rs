//! Cross-crate integration: the full PARINDA pipeline from SQL text to
//! executed results, across physical designs.

use parinda::{AutoPartConfig, Parinda, SelectionMethod};
use parinda_executor::execute;
use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
use parinda_workload::{
    generate_and_load, parse_workload, sdss_catalog, sdss_workload, sdss_workload_sql, SdssScale,
};

fn run_all(session: &Parinda, wl: &[parinda::Select]) -> Vec<Vec<String>> {
    let params = CostParams::default();
    let flags = PlannerFlags::default();
    wl.iter()
        .map(|sel| {
            let q = bind(sel, session.catalog()).expect("binds");
            let p = plan_query(&q, session.catalog(), &params, &flags).expect("plans");
            let mut rows: Vec<String> = execute(&p, session.catalog(), session.database())
                .expect("executes")
                .into_iter()
                .map(|r| r.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("|"))
                .collect();
            // ordered queries keep their order; unordered results sorted
            if sel.order_by.is_empty() {
                rows.sort();
            }
            rows
        })
        .collect()
}

#[test]
fn suggested_indexes_preserve_results_and_reduce_cost() {
    let (mut cat, tables) = sdss_catalog(SdssScale::laptop(2_000));
    let mut db = parinda::Database::new();
    generate_and_load(&mut cat, &mut db, &tables, 17);
    let mut session = Parinda::with_database(cat, db);
    let wl = sdss_workload();

    let before_results = run_all(&session, &wl);
    let before_cost = session.workload_cost(&wl).unwrap();

    let sugg = session
        .suggest_indexes(&wl, 1 << 30, SelectionMethod::Ilp)
        .expect("advisor");
    assert!(!sugg.indexes.is_empty());
    session.materialize_indexes(&sugg).expect("materialize");

    let after_results = run_all(&session, &wl);
    let after_cost = session.workload_cost(&wl).unwrap();

    assert_eq!(before_results, after_results, "results must not depend on the design");
    assert!(
        after_cost < before_cost,
        "estimated workload cost should drop: {before_cost} -> {after_cost}"
    );
}

#[test]
fn materialized_partitions_preserve_rewritten_results() {
    let (mut cat, tables) = sdss_catalog(SdssScale::laptop(2_000));
    let mut db = parinda::Database::new();
    generate_and_load(&mut cat, &mut db, &tables, 23);
    let mut session = Parinda::with_database(cat, db);
    let wl = sdss_workload();

    let before = run_all(&session, &wl);

    let sugg = session
        .suggest_partitions(&wl, AutoPartConfig::default())
        .expect("autopart");
    assert!(!sugg.partitions.is_empty());
    session.materialize_partitions(&sugg).expect("materialize");

    let after = run_all(&session, &sugg.rewritten);
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert_eq!(b, a, "query {i} rewritten results differ:\n{}\nvs\n{}", wl[i], sugg.rewritten[i]);
    }
}

#[test]
fn workload_file_to_advice() {
    // The GUI flow: workload file in, suggestions out.
    let file: String = sdss_workload_sql().iter().map(|q| format!("{q};\n")).collect();
    let parsed = parse_workload(&file).expect("workload file parses");
    assert_eq!(parsed.len(), 30);

    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    parinda_workload::synthesize_stats(&mut cat, &tables);
    let session = Parinda::new(cat);
    let sugg = session
        .suggest_indexes(&parsed.queries(), 4 << 30, SelectionMethod::Ilp)
        .expect("advisor");
    assert!(!sugg.indexes.is_empty());
    assert!(sugg.report.speedup() > 1.0);
}

#[test]
fn whatif_estimates_agree_with_materialized_costs_across_designs() {
    // For each single-index design: estimated (what-if) workload cost must
    // match the re-planned cost after actually building that index.
    use parinda_whatif::{Design, WhatIfIndex};
    let (mut cat, tables) = sdss_catalog(SdssScale::laptop(5_000));
    let mut db = parinda::Database::new();
    generate_and_load(&mut cat, &mut db, &tables, 31);
    let wl: Vec<parinda::Select> = sdss_workload().into_iter().take(10).collect();

    for (name, table, col) in [
        ("w_objid", "photoobj", "objid"),
        ("w_ra", "photoobj", "ra"),
        ("w_type", "photoobj", "type"),
    ] {
        let session = Parinda::with_database(cat.clone(), parinda::Database::new());
        let _ = session; // estimated side uses the overlay only
        let est_session = Parinda::with_database(cat.clone(), parinda::Database::new());
        let design = Design::new().with_index(WhatIfIndex::new(name, table, &[col]));
        let (report, _) = est_session.evaluate_design(&wl, &design).unwrap();

        // materialized side
        let mut mat_cat = cat.clone();
        let id = mat_cat.create_index(name, table, &[col]).unwrap();
        let _ = id;
        let mat_session = Parinda::new(mat_cat);
        let mat_cost = mat_session.workload_cost(&wl).unwrap();

        let ratio = report.total_after() / mat_cost;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "{name}: what-if {} vs materialized {}",
            report.total_after(),
            mat_cost
        );
    }
}

#[test]
fn explain_stable_across_api_layers() {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    parinda_workload::synthesize_stats(&mut cat, &tables);
    let session = Parinda::new(cat);
    for sql in sdss_workload_sql().iter().take(10) {
        let text = session.explain_sql(sql).expect("explains");
        assert!(text.contains("cost="), "{text}");
    }
}

#[test]
fn bundled_workload_file_parses_and_binds() {
    let text = std::fs::read_to_string(
        concat!(env!("CARGO_MANIFEST_DIR"), "/examples/workloads/sdss_weighted.sql"),
    )
    .expect("bundled workload file exists");
    let wl = parse_workload(&text).expect("parses");
    assert_eq!(wl.len(), 5);
    assert_eq!(wl.weights(), vec![10.0, 5.0, 1.0, 3.0, 1.0]);
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    parinda_workload::synthesize_stats(&mut cat, &tables);
    for (i, q) in wl.queries().iter().enumerate() {
        bind(q, &cat).unwrap_or_else(|e| panic!("query {i}: {e}"));
    }
}
