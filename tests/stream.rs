//! Deterministic stream-simulation harness (continuous tuning): replay
//! a seeded SDSS→retail drift scenario statement-by-statement through
//! the console's streaming verbs, pin the epoch-by-epoch designs as a
//! golden, and prove the incremental INUM path
//! ([`parinda_inum::InumModel::apply_delta`], reached through
//! `Parinda::suggest_indexes_stream`) is bit-identical to a
//! from-scratch rebuild at 1, 2, and 8 threads.
//!
//! Regenerate the golden after an intentional change with:
//!
//! ```text
//! PARINDA_BLESS=1 cargo test --test stream
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use parinda::{
    Console, ConsoleReply, IlpOptions, IndexSuggestion, Parallelism, Parinda, SelectionMethod,
};
use parinda_bench::{drift_scenario, DRIFT_DDL};

const BUDGET_BYTES: u64 = 64 << 20;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("PARINDA_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden {} missing; regenerate with PARINDA_BLESS=1 cargo test --test stream",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "\noutput drifted from tests/goldens/{name}; if the change is intentional, \
         rebless with PARINDA_BLESS=1 cargo test --test stream"
    );
}

/// Scrub the only nondeterministic text an epoch transcript can carry:
/// the budget report's elapsed wall time (`… exhausted after 0.4 ms …`).
fn scrub_times(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let mut scrubbed: Vec<&str> = Vec::with_capacity(toks.len());
        let mut i = 0;
        while i < toks.len() {
            let bare = toks[i].trim_end_matches([':', ',', ';']);
            let unit = toks.get(i + 1).map(|u| u.trim_end_matches([':', ',', ';']));
            if bare.parse::<f64>().is_ok() && matches!(unit, Some("ms" | "s" | "us" | "ns")) {
                scrubbed.push("<time>");
                i += 2;
            } else {
                scrubbed.push(toks[i]);
                i += 1;
            }
        }
        out.push_str(&scrubbed.join(" "));
        out.push('\n');
    }
    out
}

fn expect_ok(console: &mut Console, line: &str) -> String {
    match console.run_line(line) {
        ConsoleReply::Output(s) => s,
        other => panic!("`{line}` failed: {other:?}"),
    }
}

fn scenario_console(threads: usize) -> Console {
    let mut c = Console::with_session(Parinda::from_ddl(DRIFT_DDL).expect("scenario DDL parses"));
    expect_ok(&mut c, &format!("threads {threads}"));
    c
}

/// The tentpole scenario, end to end at the console: pins and bans are
/// staged up front, three phases (SDSS → transition → retail) each close
/// with an `epoch`, auto-advise fires on every phase boundary (drift is
/// maximal on the first epoch by convention and the template mix moves
/// well past 10% on the later ones), and the last epoch runs under a
/// deterministic one-round budget so the transcript pins a `DEGRADED:`
/// streaming advise too. Every epoch's design is byte-pinned, and every
/// design must honor the standing constraints.
#[test]
fn stream_simulation_epoch_designs_are_pinned() {
    let phases = drift_scenario(42, 48);
    let mut c = scenario_console(1);
    let mut t = String::new();
    for line in
        ["advise auto on", "advise budget 64", "pin orders(o_custkey)", "ban photoobj(dec)"]
    {
        let _ = writeln!(t, "parinda> {line}");
        let _ = writeln!(t, "{}", expect_ok(&mut c, line));
    }
    let last = phases.len() - 1;
    for (i, phase) in phases.iter().enumerate() {
        for sql in &phase.statements {
            expect_ok(&mut c, &format!("feed {sql}"));
        }
        let _ = writeln!(t, "-- phase {}: {} statements fed", phase.name, phase.statements.len());
        if i == last {
            let _ = writeln!(t, "parinda> budget rounds 1");
            let _ = writeln!(t, "{}", expect_ok(&mut c, "budget rounds 1"));
        }
        let _ = writeln!(t, "parinda> epoch");
        let out = expect_ok(&mut c, "epoch");
        let _ = writeln!(t, "{}", out.trim_end());
        let _ = writeln!(t, "parinda> drift");
        let _ = writeln!(t, "{}", expect_ok(&mut c, "drift"));
        assert!(
            out.contains("re-advising"),
            "phase {} crossed no drift threshold:\n{out}",
            phase.name
        );
        assert!(
            out.contains("CREATE INDEX idx_orders_o_custkey ON orders (o_custkey)"),
            "pinned index missing from phase {}'s design:\n{out}",
            phase.name
        );
        assert!(
            !out.contains("CREATE INDEX idx_photoobj_dec ON"),
            "banned index appeared in phase {}'s design:\n{out}",
            phase.name
        );
    }
    let scrubbed = scrub_times(&t);
    assert!(scrubbed.contains("DEGRADED:"), "last epoch must be budget-degraded:\n{scrubbed}");
    check_golden("stream.txt", &scrubbed);
}

/// Fingerprint of a suggestion at bit precision: chosen indexes plus
/// every per-query cost pair.
fn fingerprint(sugg: &IndexSuggestion) -> (Vec<String>, Vec<(u64, u64)>) {
    (
        sugg.indexes
            .iter()
            .map(|i| format!("{}/{}({})", i.table, i.name, i.columns.join(",")))
            .collect(),
        sugg.report
            .per_query
            .iter()
            .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
            .collect(),
    )
}

/// Tentpole acceptance: for every epoch of the scenario,
/// `suggest_indexes_stream` with the previous epoch's templates
/// (the `apply_delta` path: only arrived templates are re-bound and
/// re-populated) returns a suggestion bit-identical to the from-scratch
/// rebuild — for both solvers, at 1, 2, and 8 threads, and identically
/// across the thread counts.
#[test]
fn incremental_advise_is_bit_identical_to_full_rebuild() {
    let phases = drift_scenario(7, 32);
    let mut acc = parinda_stream::StreamAccumulator::new();
    let trace = parinda::Trace::disabled();
    let mut epochs: Vec<(Vec<parinda::Select>, Vec<f64>)> = Vec::new();
    for phase in &phases {
        for sql in &phase.statements {
            acc.feed(sql).expect("scenario statements parse");
        }
        acc.advance_epoch(&trace).expect("epoch advances");
        epochs.push((acc.queries(), acc.weights()));
    }

    for method in [SelectionMethod::Ilp, SelectionMethod::Greedy] {
        let mut reference: Option<Vec<(Vec<String>, Vec<(u64, u64)>)>> = None;
        for threads in [1usize, 2, 8] {
            let mut s = Parinda::from_ddl(DRIFT_DDL).expect("scenario DDL parses");
            s.set_parallelism(Parallelism::fixed(threads));
            let mut per_epoch = Vec::new();
            for (i, (q, w)) in epochs.iter().enumerate() {
                let previous = (i > 0)
                    .then(|| (epochs[i - 1].0.as_slice(), epochs[i - 1].1.as_slice()));
                let advise = |prev| {
                    s.suggest_indexes_stream(
                        q,
                        w,
                        prev,
                        BUDGET_BYTES,
                        method,
                        &IlpOptions::default(),
                        &[],
                        &[],
                    )
                    .expect("streaming advise")
                };
                let incremental = fingerprint(&advise(previous));
                let rebuilt = fingerprint(&advise(None));
                assert_eq!(
                    incremental, rebuilt,
                    "apply_delta diverged from full rebuild: epoch {} ({method:?}, {threads} threads)",
                    i + 1
                );
                per_epoch.push(incremental);
            }
            match &reference {
                None => reference = Some(per_epoch),
                Some(r) => assert_eq!(
                    r, &per_epoch,
                    "epoch designs differ at {threads} threads ({method:?})"
                ),
            }
        }
    }
}

/// The console-level constraint store rejects a direct pin/ban conflict,
/// and the advisor resolves *aliased* spellings of the same index (a
/// `table(col)` spec vs. its generated `idx_…` display name is the
/// classic case; here two spellings of the same spec) to a typed
/// `error [advisor]:` instead of an inconsistent design or a panic.
#[test]
fn conflicting_pin_and_ban_is_a_typed_advisor_error() {
    let mut c = scenario_console(1);
    // direct conflict: caught by the constraint store at `ban` time
    expect_ok(&mut c, "pin orders(o_custkey)");
    match c.run_line("ban orders(o_custkey)") {
        ConsoleReply::Error(e) => {
            assert_eq!(e.kind(), "advisor", "{e}");
            assert!(e.to_string().contains("pinned"), "{e}");
        }
        other => panic!("conflicting ban accepted: {other:?}"),
    }
    // aliased conflict: different strings, same candidate — only the
    // advisor's resolution step can see it
    expect_ok(&mut c, "ban orders( o_custkey )");
    expect_ok(&mut c, "advise auto on");
    expect_ok(&mut c, "feed SELECT o_id FROM orders WHERE o_custkey = 7");
    match c.run_line("epoch") {
        ConsoleReply::Error(e) => {
            assert_eq!(e.kind(), "advisor", "{e}");
            assert!(e.to_string().contains("both pinned and banned"), "{e}");
        }
        other => panic!("aliased pin+ban conflict not detected: {other:?}"),
    }
    // unknown names are typed too, not panics. The failed advise did
    // not roll back the epoch advance (the epoch committed before the
    // constraint resolution ran), so the next advise needs fresh drift:
    // feed a different template until the mix moves past the threshold.
    expect_ok(&mut c, "unban orders( o_custkey )");
    expect_ok(&mut c, "unpin orders(o_custkey)");
    expect_ok(&mut c, "pin no_such_table(nope)");
    expect_ok(&mut c, "feed SELECT l_id FROM lineitem WHERE l_orderkey = 5");
    expect_ok(&mut c, "feed SELECT l_id FROM lineitem WHERE l_orderkey = 6");
    match c.run_line("epoch") {
        ConsoleReply::Error(e) => {
            assert_eq!(e.kind(), "advisor", "{e}");
            assert!(e.to_string().contains("unknown table in index spec"), "{e}");
        }
        other => panic!("unknown pinned index not rejected: {other:?}"),
    }
}

/// Mid-stream budget changes are honored: the same stream advised under
/// a tighter storage budget can only keep a subset of the design, and
/// the pinned index survives even when it eats most of the budget.
#[test]
fn storage_budget_changes_mid_stream() {
    let phases = drift_scenario(3, 32);
    let mut c = scenario_console(1);
    expect_ok(&mut c, "advise auto on");
    expect_ok(&mut c, "pin lineitem(l_orderkey)");
    for sql in &phases[2].statements {
        expect_ok(&mut c, &format!("feed {sql}"));
    }
    expect_ok(&mut c, "advise budget 512");
    let wide = expect_ok(&mut c, "epoch");
    assert!(wide.contains("CREATE INDEX idx_lineitem_l_orderkey ON"), "{wide}");
    // drift back in with the same mix, tightened to 1 MB: the pin must
    // still be in the design, and nothing wider than the budget can be
    for sql in &phases[1].statements {
        expect_ok(&mut c, &format!("feed {sql}"));
    }
    expect_ok(&mut c, "advise budget 1");
    let tight = expect_ok(&mut c, "epoch");
    assert!(
        tight.contains("CREATE INDEX idx_lineitem_l_orderkey ON"),
        "pin lost under a tight budget:\n{tight}"
    );
    assert!(
        tight.matches("CREATE INDEX").count() <= wide.matches("CREATE INDEX").count(),
        "tighter budget produced a wider design:\nwide:\n{wide}\ntight:\n{tight}"
    );
}

/// Satellite: a 1 ms wall budget cannot fit the paper-scale search, so
/// a drift-triggered advise inside `epoch` comes back as a valid,
/// explicitly `DEGRADED:` best-so-far design instead of blocking the
/// stream.
#[test]
fn one_ms_budget_yields_a_degraded_epoch() {
    let mut c = Console::new();
    expect_ok(&mut c, "load paper");
    expect_ok(&mut c, "threads 1");
    expect_ok(&mut c, "advise auto on");
    for q in parinda_workload::sdss_workload() {
        expect_ok(&mut c, &format!("feed {q}"));
    }
    expect_ok(&mut c, "budget 1");
    let out = expect_ok(&mut c, "epoch");
    assert!(out.contains("re-advising"), "first epoch drift is maximal by convention:\n{out}");
    assert!(out.contains("DEGRADED:"), "1 ms cannot fit the full SDSS search:\n{out}");
}

/// Streamed clustering matches batch compression: the same statements
/// fed one by one or handed to `workload stats` as a file land on the
/// same templates with the same member counts.
#[test]
fn streamed_templates_match_batch_compression() {
    let phases = drift_scenario(11, 40);
    let mut acc = parinda_stream::StreamAccumulator::new();
    let mut entries = Vec::new();
    for sql in &phases[0].statements {
        acc.feed(sql).expect("feeds");
        entries.push(parinda_workload::WorkloadEntry {
            query: parinda::parse_select(sql).expect("parses"),
            weight: 1.0,
        });
    }
    acc.advance_epoch(&parinda::Trace::disabled()).expect("advances");
    let batch = parinda_workload::compress_workload(&parinda_workload::Workload { entries });
    let mut streamed: Vec<(String, u64)> = acc
        .templates()
        .iter()
        .map(|t| (t.fingerprint.clone(), t.members))
        .collect();
    let mut batched: Vec<(String, u64)> =
        batch.templates.iter().map(|t| (t.fingerprint.clone(), t.members as u64)).collect();
    streamed.sort();
    batched.sort();
    assert_eq!(streamed, batched, "streamed and batch clustering disagree");
}
