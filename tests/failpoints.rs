//! Deterministic fault-injection matrix (compiled only with
//! `--features failpoints`): every named site × {err, panic, delay}
//! driven through a live console at 1, 2, and 8 threads. The guarantee
//! under test: a fault at any site yields the **same typed error or the
//! same degraded-but-valid reply at every thread count** — containment
//! and determinism, not just absence of crashes.
//!
//! The whole matrix lives in one `#[test]` because the failpoint
//! registry is process-global; parallel test functions would race on it.

#![cfg(feature = "failpoints")]

use parinda::{Console, ConsoleReply, Parinda};
use parinda_failpoint::{self as failpoint, Action};

const TINY_DDL: &str =
    "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION, dec DOUBLE PRECISION,
                       flags BIGINT, PRIMARY KEY (id)) ROWS 5000;
     CREATE TABLE src (id BIGINT NOT NULL, mag DOUBLE PRECISION, PRIMARY KEY (id)) ROWS 800;";

fn tiny_session() -> Parinda {
    Parinda::from_ddl(TINY_DDL).expect("fixed DDL parses")
}

/// A scripted session that reaches every failpoint site: workload
/// loading, template clustering, both index advisors (the ILP path
/// seeds the solver's warm start), AutoPart, planning, and a physical
/// data load.
const SCRIPT: &[&str] = &[
    "workload file {wl}",
    "workload stats",
    "suggest indexes 64 ilp",
    "suggest indexes 64 greedy",
    "suggest partitions",
    "explain select id from obs where ra between 1 and 2",
    // Streaming verbs: two epochs with drifting templates. Epoch 1's
    // drift is maximal by convention, so auto-advise fires (a fresh
    // model build); epoch 2 re-advises through `InumModel::apply_delta`,
    // reaching the `stream::*` and `inum::delta` sites.
    "advise auto on",
    "advise budget 64",
    "feed select id from obs where ra between 1 and 2",
    "feed select id from obs where ra between 1 and 2",
    "feed select id from src where mag <= 3",
    "epoch",
    "feed select id from obs where dec > 0.5",
    "feed select id from obs where dec > 0.5",
    "feed select id from src where mag <= 3",
    "epoch",
    "drift",
    "load laptop 10",
];

fn run_script(threads: usize, wl: &str) -> Vec<String> {
    let mut console = Console::with_session(tiny_session());
    // set the thread policy outside the recorded replies (its echo
    // mentions the count, which legitimately differs per run)
    console.run_line(&format!("threads {threads}"));
    SCRIPT
        .iter()
        .map(|line| match console.run_line(&line.replace("{wl}", wl)) {
            ConsoleReply::Output(s) => format!("ok: {s}"),
            ConsoleReply::Error(e) => format!("err[{}]: {e}", e.kind()),
            ConsoleReply::Quit => "quit".into(),
        })
        .collect()
}

/// Read one wire frame (`ok/err/bye` header + sized payload) as one
/// string, or `None` on a broken connection.
fn read_frame(r: &mut impl std::io::BufRead) -> Option<String> {
    let mut header = String::new();
    if r.read_line(&mut header).ok()? == 0 {
        return None;
    }
    let n: usize = header.trim_end().rsplit(' ').next()?.parse().ok()?;
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload).ok()?;
    Some(format!("{header}{}", String::from_utf8_lossy(&payload)))
}

/// [`run_script`] driven over the wire instead: a fresh daemon on an
/// ephemeral port, one client connection replaying [`SCRIPT`], replies
/// captured as raw frames. `server::accept` refusals surface as a
/// single `err` frame in greeting position.
fn run_wire_script(threads: usize, wl: &str) -> Vec<String> {
    let engine = parinda::SharedEngine::from_ddl(TINY_DDL).expect("fixed DDL parses");
    let server = parinda_server::Server::bind(
        engine,
        "127.0.0.1:0",
        parinda_server::ServerOptions::default(),
    )
    .expect("bind");
    drive_wire(server, threads, wl)
}

/// [`run_wire_script`] against a *durable* daemon on a fresh data dir,
/// following the CLI's fallback contract: if opening/recovering the
/// data dir fails or panics (the `recover::replay` injections), the
/// daemon starts ephemeral instead of dying. WAL-path injections
/// (`wal::*`) degrade the daemon to ephemeral at startup or mid-run —
/// either way the client-visible replies must stay thread-deterministic.
fn run_durable_script(threads: usize, wl: &str) -> Vec<String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "parinda_fp_durable_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let engine = parinda::SharedEngine::from_ddl(TINY_DDL).expect("fixed DDL parses");
    let bootstrap = format!("ddl\n{TINY_DDL}");
    let opened = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        parinda_server::Durability::open(&dir, &bootstrap)
    }));
    let server = match opened {
        Ok(Ok(dur)) => parinda_server::Server::bind_durable(
            engine,
            "127.0.0.1:0",
            parinda_server::ServerOptions::default(),
            dur,
        )
        .expect("bind durable"),
        // Recovery failed or panicked: start ephemeral, like the CLI.
        _ => parinda_server::Server::bind(
            engine,
            "127.0.0.1:0",
            parinda_server::ServerOptions::default(),
        )
        .expect("bind"),
    };
    let replies = drive_wire(server, threads, wl);
    std::fs::remove_dir_all(&dir).ok();
    replies
}

/// Spawn a bound daemon, replay [`SCRIPT`] over one connection, shut
/// down cleanly, and return the reply frames (minus the `threads` echo).
fn drive_wire(server: parinda_server::Server, threads: usize, wl: &str) -> Vec<String> {
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    let handle = server.spawn().expect("spawn");
    let replies = (|| {
        let stream = TcpStream::connect(handle.addr()).ok()?;
        stream.set_read_timeout(Some(std::time::Duration::from_secs(60))).ok();
        let mut w = stream.try_clone().ok()?;
        let mut r = BufReader::new(stream);
        let greeting = read_frame(&mut r)?;
        if greeting.starts_with("err") {
            return Some(vec![greeting]);
        }
        let mut lines = vec![format!("threads {threads}")];
        lines.extend(SCRIPT.iter().map(|l| l.replace("{wl}", wl)));
        for l in &lines {
            w.write_all(format!("{l}\n").as_bytes()).ok()?;
        }
        let mut out = Vec::new();
        for _ in &lines {
            out.push(read_frame(&mut r)?);
        }
        // drop the `threads` echo, like run_script (its text mentions
        // the thread count, which legitimately differs per run)
        Some(out.split_off(1))
    })()
    .unwrap_or_else(|| vec!["wire: connection failed".into()]);
    handle.shutdown().expect("clean shutdown");
    replies
}

/// Literal manifest of every registered site. The matrix below iterates
/// `failpoint::SITES` programmatically, so without this pin a site could
/// be added (or renamed) without anyone checking that [`SCRIPT`] still
/// reaches it. Renaming a site must consciously touch this list, the
/// README table, and the call site — the `failpoint-coverage` lint
/// cross-checks all three.
#[test]
fn site_manifest_is_exhaustive() {
    let manifest = [
        "parallel::item",
        "inum::bind",
        "inum::plan_case",
        "inum::access_cost",
        "advisor::benefit_cell",
        "advisor::autopart_eval",
        "advisor::rewrite",
        "solver::relax",
        "solver::simplex",
        "storage::load",
        "core::dispatch",
        "workload::cluster",
        "solver::warmstart",
        "server::accept",
        "server::session",
        "wal::append",
        "wal::fsync",
        "wal::snapshot",
        "recover::replay",
        "stream::feed",
        "stream::epoch",
        "stream::drift",
        "inum::delta",
    ];
    assert_eq!(
        failpoint::SITES,
        &manifest,
        "SITES changed: update this manifest, the README site table, and make sure SCRIPT reaches the new site"
    );
}

#[test]
fn every_site_is_contained_and_thread_deterministic() {
    // contained panics still run the hook; keep the log readable
    std::panic::set_hook(Box::new(|_| {}));

    let wl_path = std::env::temp_dir().join("parinda_failpoints_wl.sql");
    std::fs::write(
        &wl_path,
        "SELECT id FROM obs WHERE ra BETWEEN 1 AND 2;
         SELECT id FROM obs WHERE dec > 0.5;
         SELECT id FROM src WHERE mag <= 3;",
    )
    .expect("temp workload file");
    let wl = wl_path.display().to_string();

    // Sanity: the fault-free script is itself thread-deterministic, so
    // any divergence below is attributable to the injected fault.
    failpoint::clear_all();
    let clean = run_script(1, &wl);
    assert_eq!(clean, run_script(8, &wl), "clean script diverges across thread counts");
    assert!(
        clean.iter().all(|r| r.starts_with("ok: ")),
        "clean script should succeed everywhere: {clean:#?}"
    );
    // Same sanity pass for the wire driver used by the server sites.
    let clean_wire = run_wire_script(1, &wl);
    assert_eq!(
        clean_wire,
        run_wire_script(8, &wl),
        "clean wire script diverges across thread counts"
    );
    assert!(
        clean_wire.iter().all(|r| r.starts_with("ok ")),
        "clean wire script should succeed everywhere: {clean_wire:#?}"
    );
    // And for the durable driver: a healthy WAL must be *invisible* —
    // the durable daemon's replies are byte-identical to the ephemeral
    // daemon's (the journal never changes what a client sees).
    let clean_durable = run_durable_script(1, &wl);
    assert_eq!(
        clean_durable,
        run_durable_script(8, &wl),
        "clean durable script diverges across thread counts"
    );
    assert_eq!(
        clean_durable, clean_wire,
        "a healthy WAL changed client-visible replies"
    );

    for &site in failpoint::SITES {
        // Server sites live in the daemon's accept/request path, which a
        // console cannot reach: drive those through a real socket; the
        // durability sites additionally need a daemon with a data dir.
        let over_wire = site.starts_with("server::");
        let durable = site.starts_with("wal::") || site.starts_with("recover::");
        let baseline = if durable {
            &clean_durable
        } else if over_wire {
            &clean_wire
        } else {
            &clean
        };
        for action in [Action::Err, Action::Panic, Action::Delay(1)] {
            failpoint::clear_all();
            failpoint::reset_hits();
            failpoint::set(site, action);

            let mut reference: Option<Vec<String>> = None;
            for threads in [1usize, 2, 8] {
                let replies = if durable {
                    run_durable_script(threads, &wl)
                } else if over_wire {
                    run_wire_script(threads, &wl)
                } else {
                    run_script(threads, &wl)
                };
                match &reference {
                    None => reference = Some(replies),
                    Some(r) => assert_eq!(
                        r, &replies,
                        "site {site} under {action:?} diverges at {threads} threads"
                    ),
                }
            }
            assert!(
                failpoint::hit_count(site) > 0,
                "script never reached site {site}; the matrix is not exercising it"
            );
            // A delay must not change the answer at all, only the clock.
            if action == Action::Delay(1) {
                assert_eq!(
                    reference.as_deref(),
                    Some(&baseline[..]),
                    "delay at {site} changed the replies"
                );
            }
        }
    }

    failpoint::clear_all();
    std::fs::remove_file(&wl_path).ok();
    let _ = std::panic::take_hook();
}
