//! Serve-mode preflight contract (ISSUE 8 satellite): flag problems
//! that doom the daemon must abort *before* the listener starts, with
//! a typed `error [io]:` naming the offending path and exit code 2 —
//! never a daemon that binds a port and limps along half-configured.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Run the binary with `args`; the process must exit on its own within
/// 10 s (a preflight regression would leave a daemon running forever —
/// kill it and fail rather than hanging the suite).
fn run_expecting_exit(args: &[&str]) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_parinda-cli"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn parinda-cli");
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if Instant::now() >= deadline => {
                child.kill().ok();
                child.wait().ok();
                panic!("parinda-cli {args:?} did not exit: preflight failed to abort");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    let mut out = String::new();
    let mut err = String::new();
    use std::io::Read;
    child.stdout.take().unwrap().read_to_string(&mut out).ok();
    child.stderr.take().unwrap().read_to_string(&mut err).ok();
    (status.code().unwrap_or(-1), out, err)
}

#[test]
fn serve_aborts_on_unreadable_ddl_before_listening() {
    let missing = std::env::temp_dir().join("parinda_cli_no_such_file.sql");
    std::fs::remove_file(&missing).ok();
    let spec = format!("ddl:{}", missing.display());
    let (code, out, err) =
        run_expecting_exit(&["serve", "--listen", "127.0.0.1:0", "--load", &spec]);
    assert_eq!(code, 2, "unreadable ddl must exit 2\nstdout: {out}\nstderr: {err}");
    assert!(err.contains("error [io]:"), "untyped error: {err}");
    assert!(
        err.contains(&missing.display().to_string()),
        "error must name the offending path: {err}"
    );
    assert!(
        !out.contains("listening on"),
        "listener started despite a doomed --load: {out}"
    );
}

#[test]
fn serve_refuses_non_directory_data_dir_before_listening() {
    let file = std::env::temp_dir().join("parinda_cli_not_a_dir");
    std::fs::write(&file, b"plain file, not a data dir").expect("temp file");
    let dir = file.display().to_string();
    let (code, out, err) =
        run_expecting_exit(&["serve", "--listen", "127.0.0.1:0", "--data-dir", &dir]);
    assert_eq!(code, 2, "non-directory --data-dir must exit 2\nstdout: {out}\nstderr: {err}");
    assert!(err.contains("error [io]:"), "untyped error: {err}");
    assert!(err.contains(&dir), "error must name the offending path: {err}");
    assert!(err.contains("not a directory"), "error must say why: {err}");
    assert!(
        !out.contains("listening on"),
        "listener started despite a doomed --data-dir: {out}"
    );
    std::fs::remove_file(&file).ok();
}
