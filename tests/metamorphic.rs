//! Metamorphic invariants of the advisor pipeline: properties that must
//! hold between *related* runs, regardless of absolute cost values. Each
//! invariant is checked on both schemas (SDSS and retail) and, where the
//! parallel engine is involved, at 1 and 4 threads.
//!
//! 1. Adding a hypothetical index never increases any query's estimated
//!    cost (the plan space only grows).
//! 2. A superset index configuration's workload cost is never above a
//!    subset's (INUM cached model).
//! 3. Doubling a table's row statistics never decreases its seq-scan
//!    cost (cost model monotone in relation size).
//! 4. Every ILP benefit-matrix entry is non-negative (benefit = cost
//!    without the index minus cost with it).

use parinda::{Parallelism, Parinda};
use parinda_advisor::{generate_candidates, CandidateLimits};
use parinda_catalog::MetadataProvider;
use parinda_inum::{CandidateIndex, Configuration, InumModel, InumOptions};
use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
use parinda_whatif::{Design, WhatIfIndex};
use parinda_workload::{
    retail_catalog, retail_load, retail_workload, sdss_catalog, sdss_workload, synthesize_stats,
    SdssScale,
};

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Relative slack for cross-plan float comparisons: the invariant is
/// about plan *choice*, identical shared plans cost bit-identically, so
/// only a hair of slack is justified.
const EPS: f64 = 1e-9;

fn sdss_session() -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    Parinda::new(cat)
}

fn retail_session() -> Parinda {
    let (mut cat, tables) = retail_catalog(2_000);
    let mut db = parinda::Database::new();
    retail_load(&mut cat, &mut db, &tables, 3);
    Parinda::with_database(cat, db)
}

fn schemas() -> [(&'static str, fn() -> Parinda, Vec<parinda::Select>); 2] {
    [
        ("sdss", sdss_session as fn() -> Parinda, sdss_workload()),
        ("retail", retail_session as fn() -> Parinda, retail_workload()),
    ]
}

/// Candidate indexes for a workload, as `(CandidateIndex, WhatIfIndex)`
/// pairs so both the INUM model and the planner-overlay checks can use
/// the same pool.
fn candidate_pool(
    session: &Parinda,
    workload: &[parinda::Select],
    cap: usize,
) -> Vec<(CandidateIndex, WhatIfIndex)> {
    let model =
        InumModel::build(session.catalog(), workload, CostParams::default()).expect("inum");
    let cands = generate_candidates(model.queries(), CandidateLimits::default());
    cands
        .into_iter()
        .take(cap)
        .enumerate()
        .filter_map(|(i, c)| {
            let table = session.catalog().table(c.table)?;
            let cols: Vec<String> = c
                .columns
                .iter()
                .filter_map(|&p| table.columns.get(p).map(|col| col.name.clone()))
                .collect();
            if cols.len() != c.columns.len() {
                return None;
            }
            let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
            let w = WhatIfIndex::new(format!("meta_w{i}"), &table.name, &col_refs);
            Some((c, w))
        })
        .collect()
}

/// Invariant 1: a hypothetical index never increases any query's
/// estimated cost — the optimizer picks the min over a superset of
/// access paths.
#[test]
fn hypothetical_index_never_increases_query_cost() {
    for (schema, mk, wl) in schemas() {
        let session = mk();
        let params = CostParams::default();
        let flags = PlannerFlags::default();
        let pool = candidate_pool(&session, &wl, 8);
        assert!(!pool.is_empty(), "{schema}: candidate pool must not be empty");
        for (qi, sel) in wl.iter().enumerate() {
            let q = bind(sel, session.catalog()).expect("bind");
            let base = plan_query(&q, session.catalog(), &params, &flags).expect("plan");
            for (_, w) in &pool {
                let design = Design::new().with_index(w.clone());
                let overlay = design.apply(session.catalog()).expect("overlay");
                let qh = bind(sel, &overlay).expect("bind overlay");
                let ph = plan_query(&qh, &overlay, &params, &flags).expect("plan overlay");
                assert!(
                    ph.cost.total <= base.cost.total * (1.0 + EPS),
                    "{schema} Q{qi}: hypo index {} raised cost {} -> {}",
                    w.name,
                    base.cost.total,
                    ph.cost.total
                );
            }
        }
    }
}

/// Invariant 2: workload cost is monotone non-increasing in the index
/// configuration (superset never costs more than subset), at 1 and 4
/// threads.
#[test]
fn superset_configuration_never_costs_more() {
    for (schema, mk, wl) in schemas() {
        for threads in THREAD_COUNTS {
            let session = mk();
            let mut model = InumModel::build_par(
                session.catalog(),
                &wl,
                CostParams::default(),
                InumOptions::default(),
                Parallelism::fixed(threads),
            )
            .expect("inum");
            let pool = candidate_pool(&session, &wl, 6);
            let ids: Vec<_> =
                pool.iter().map(|(c, _)| model.register_candidate(c.clone())).collect();
            let n = ids.len().min(6) as u32;
            for mask in 0..(1u32 << n) {
                let cfg = |m: u32| {
                    Configuration::from_ids(
                        ids.iter()
                            .enumerate()
                            .filter(|(i, _)| m & (1 << i) != 0)
                            .map(|(_, &id)| id),
                    )
                };
                let sub_cost = model.workload_cost(&cfg(mask));
                for bit in 0..n {
                    if mask & (1 << bit) != 0 {
                        continue;
                    }
                    let sup_cost = model.workload_cost(&cfg(mask | (1 << bit)));
                    assert!(
                        sup_cost <= sub_cost * (1.0 + EPS),
                        "{schema}@{threads}t: superset mask {:b} costs {} > subset {:b} at {}",
                        mask | (1 << bit),
                        sup_cost,
                        mask,
                        sub_cost
                    );
                }
            }
        }
    }
}

/// Invariant 3: doubling a table's row statistics never decreases its
/// seq-scan cost (more pages, more tuples — strictly monotone inputs to
/// the cost model).
#[test]
fn doubling_row_stats_never_decreases_seq_scan_cost() {
    for (schema, mk, _) in schemas() {
        let session = mk();
        let params = CostParams::default();
        // forbid index paths so the plan is the bare Seq Scan
        let flags = PlannerFlags { enable_indexscan: false, ..Default::default() };
        let tables: Vec<_> =
            session.catalog().all_tables().iter().map(|t| (t.id, t.name.clone())).collect();
        for (tid, name) in tables {
            let first_col = match session.catalog().table(tid).and_then(|t| t.columns.first()) {
                Some(c) => c.name.clone(),
                None => continue,
            };
            let sql = format!("SELECT {first_col} FROM {name}");
            let sel = parinda::parse_select(&sql).expect("parse");
            let cost_at = |session: &Parinda| {
                let q = bind(&sel, session.catalog()).expect("bind");
                plan_query(&q, session.catalog(), &params, &flags).expect("plan").cost.total
            };
            let before = cost_at(&session);
            let mut doubled = mk();
            {
                let t = doubled.catalog_mut().table_mut(tid).expect("table");
                t.row_count *= 2;
                t.recompute_pages();
            }
            let after = cost_at(&doubled);
            assert!(
                after >= before * (1.0 - EPS),
                "{schema}.{name}: doubling rows dropped seq-scan cost {before} -> {after}"
            );
        }
    }
}

/// Invariant 4: every entry of the ILP benefit matrix is non-negative:
/// benefit(q, c) = cost(q, ∅) − cost(q, {c}) ≥ 0, at 1 and 4 threads.
#[test]
fn ilp_benefit_matrix_entries_non_negative() {
    for (schema, mk, wl) in schemas() {
        for threads in THREAD_COUNTS {
            let session = mk();
            let mut model = InumModel::build_par(
                session.catalog(),
                &wl,
                CostParams::default(),
                InumOptions::default(),
                Parallelism::fixed(threads),
            )
            .expect("inum");
            let pool = candidate_pool(&session, &wl, 10);
            let ids: Vec<_> =
                pool.iter().map(|(c, _)| model.register_candidate(c.clone())).collect();
            let empty = Configuration::empty();
            for qi in 0..wl.len() {
                let base = model.cost(qi, &empty);
                for (&id, (_, w)) in ids.iter().zip(&pool) {
                    let with = model.cost(qi, &Configuration::from_ids([id]));
                    let benefit = base - with;
                    assert!(
                        benefit >= -EPS * base.abs(),
                        "{schema}@{threads}t Q{qi}: candidate {} has negative benefit {benefit}",
                        w.name
                    );
                }
            }
        }
    }
}
