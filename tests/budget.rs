//! Budgeted-advisor acceptance suite: under a tiny wall-clock budget the
//! advisors must return a valid (possibly empty) design quickly, flagged
//! `degraded`, and with the budget removed they must be bit-identical to
//! an unbudgeted session — the budget machinery may cost nothing when
//! off.

use std::time::{Duration, Instant};

use parinda::{AutoPartConfig, Console, ConsoleReply, Parinda, SelectionMethod};
use parinda_workload::{sdss_catalog, sdss_workload, synthesize_stats, SdssScale};

fn sdss_session() -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    Parinda::new(cat)
}

fn tiny_session() -> Parinda {
    Parinda::from_ddl(
        "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION, dec DOUBLE PRECISION,
                           flags BIGINT, PRIMARY KEY (id)) ROWS 5000;
         CREATE TABLE src (id BIGINT NOT NULL, mag DOUBLE PRECISION, PRIMARY KEY (id)) ROWS 800;",
    )
    .expect("fixed DDL parses")
}

fn tiny_workload_file(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("parinda_budget_{name}.sql"));
    std::fs::write(
        &path,
        "SELECT id FROM obs WHERE ra BETWEEN 1 AND 2;
         SELECT id FROM obs WHERE dec > 0.5;
         SELECT id FROM src WHERE mag <= 3;",
    )
    .expect("temp workload file");
    path
}

/// `budget 1` at SDSS paper scale: both advisors come back almost
/// immediately with a valid best-so-far (possibly empty) design flagged
/// degraded — instead of the multi-second exhaustive run.
#[test]
fn one_ms_budget_degrades_within_bound() {
    let workload = sdss_workload();
    let mut session = sdss_session();
    session.set_budget_ms(Some(1));

    let t0 = Instant::now();
    let sugg = session
        .suggest_indexes(&workload, 2_u64 << 30, SelectionMethod::Ilp)
        .expect("budgeted advise must not error");
    let elapsed = t0.elapsed();
    assert!(elapsed < Duration::from_secs(2), "advise took {elapsed:?} under a 1 ms budget");
    assert!(sugg.degraded, "1 ms cannot fit the full SDSS search");
    assert!(!sugg.proven_optimal);
    let report = sugg.budget.expect("degraded result carries a budget report");
    assert!(report.candidates_skipped > 0, "{report}");
    // the report stays fully usable: one entry per workload query
    assert_eq!(sugg.report.per_query.len(), workload.len());

    let t0 = Instant::now();
    let parts = session
        .suggest_partitions(&workload, AutoPartConfig::default())
        .expect("budgeted partitioning must not error");
    let elapsed = t0.elapsed();
    assert!(elapsed < Duration::from_secs(5), "partition took {elapsed:?} under a 1 ms budget");
    assert!(parts.degraded, "1 ms cannot fit the full AutoPart search");
    assert!(parts.budget.is_some());
    assert_eq!(parts.report.per_query.len(), workload.len());
    assert_eq!(parts.rewritten.len(), workload.len());
}

/// With the budget off the budgeted plumbing must be invisible:
/// bit-identical selections and costs vs. a session that never had one.
#[test]
fn budget_off_is_bit_identical_to_unbudgeted_session() {
    let workload = sdss_workload();

    let never = sdss_session()
        .suggest_indexes(&workload, 2_u64 << 30, SelectionMethod::Ilp)
        .expect("unbudgeted advise");

    let mut session = sdss_session();
    session.set_budget_ms(Some(500));
    session.set_budget_rounds(Some(2));
    session.set_budget_ms(None);
    session.set_budget_rounds(None);
    let off = session
        .suggest_indexes(&workload, 2_u64 << 30, SelectionMethod::Ilp)
        .expect("budget-off advise");

    assert!(!off.degraded);
    assert!(off.budget.is_none());
    assert_eq!(never.proven_optimal, off.proven_optimal);
    let fp = |s: &parinda::IndexSuggestion| -> Vec<(String, String, Vec<String>, u64)> {
        s.indexes
            .iter()
            .map(|i| (i.name.clone(), i.table.clone(), i.columns.clone(), i.size_bytes))
            .collect()
    };
    assert_eq!(fp(&never), fp(&off), "budget off changed the selection");
    let costs = |s: &parinda::IndexSuggestion| -> Vec<(u64, u64)> {
        s.report
            .per_query
            .iter()
            .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
            .collect()
    };
    assert_eq!(costs(&never), costs(&off), "budget off changed per-query costs");
}

/// Console grammar for the new verbs.
#[test]
fn console_budget_grammar() {
    let mut c = Console::new();
    let out = |r: ConsoleReply| match r {
        ConsoleReply::Output(s) => s,
        other => panic!("expected output, got {other:?}"),
    };
    assert!(out(c.run_line("budget")).contains("off"));
    assert!(out(c.run_line("budget 500")).contains("500 ms"));
    assert!(out(c.run_line("budget")).contains("500 ms"));
    assert!(out(c.run_line("budget rounds 3")).contains("3 round(s)"));
    assert!(out(c.run_line("budget off")).contains("off"));
    assert!(out(c.run_line("cancel")).contains("cancellation requested"));
    for bad in ["budget zero", "budget -5", "budget 0", "budget rounds", "budget rounds x"] {
        assert!(
            matches!(c.run_line(bad), ConsoleReply::Error(parinda::ParindaError::Parse(_))),
            "{bad} should be a usage error"
        );
    }
}

/// The budget setting survives `load`, like the thread policy.
#[test]
fn budget_sticks_across_loads() {
    let mut c = Console::new();
    c.run_line("budget 250");
    c.run_line("load paper");
    let s = c.session().expect("loaded");
    assert_eq!(s.budget_ms(), Some(250));
    match c.run_line("budget") {
        ConsoleReply::Output(s) => assert!(s.contains("250 ms"), "{s}"),
        other => panic!("{other:?}"),
    }
}

/// `cancel` pre-arms cooperative cancellation: the next advisor run stops
/// at its first checkpoint and reports a degraded best-so-far design;
/// the flag is consumed, so the run after that completes normally.
#[test]
fn cancel_degrades_exactly_one_run() {
    let path = tiny_workload_file("cancel");
    let mut c = Console::with_session(tiny_session());
    match c.run_line(&format!("workload file {}", path.display())) {
        ConsoleReply::Output(_) => {}
        other => panic!("workload load failed: {other:?}"),
    }

    c.run_line("cancel");
    match c.run_line("suggest indexes 64 ilp") {
        ConsoleReply::Output(s) => assert!(s.contains("DEGRADED"), "pre-armed cancel ignored: {s}"),
        other => panic!("{other:?}"),
    }
    // the token was consumed: the next run is exact again
    match c.run_line("suggest indexes 64 ilp") {
        ConsoleReply::Output(s) => assert!(!s.contains("DEGRADED"), "stale cancel flag: {s}"),
        other => panic!("{other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
