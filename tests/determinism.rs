//! Determinism suite for the parallel evaluation engine: every advisor
//! answer — workload costs, ILP index selections, AutoPart designs — must
//! be **bit-identical** for any thread count. Runs on both schemas (SDSS
//! and retail) so nothing SDSS-specific can mask a race.

use parinda::{AutoPartConfig, Parallelism, Parinda, SelectionMethod};
use parinda_advisor::{generate_candidates, CandidateLimits};
use parinda_inum::{Configuration, InumModel, InumOptions};
use parinda_optimizer::CostParams;
use parinda_workload::{
    retail_catalog, retail_load, retail_workload, sdss_catalog, sdss_workload, synthesize_stats,
    SdssScale,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn sdss_session() -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    Parinda::new(cat)
}

fn retail_session() -> Parinda {
    let (mut cat, tables) = retail_catalog(2_000);
    let mut db = parinda::Database::new();
    retail_load(&mut cat, &mut db, &tables, 3);
    Parinda::with_database(cat, db)
}

/// Exact float equality (the guarantee is bit-level, not epsilon-level).
fn assert_bits_eq(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
}

fn check_workload_costs(mk: fn() -> Parinda, workload: &[parinda::Select], schema: &str) {
    let session = mk();
    let params = CostParams::default();
    let baseline = InumModel::build_par(
        session.catalog(),
        workload,
        params.clone(),
        InumOptions::default(),
        Parallelism::fixed(1),
    )
    .unwrap();
    let cands = generate_candidates(&baseline.queries().to_vec(), CandidateLimits::default());

    let mut base = baseline;
    let ids: Vec<_> = cands.iter().map(|c| base.register_candidate(c.clone())).collect();
    let empty_cost = base.workload_cost(&Configuration::empty());
    let full_cost = base.workload_cost(&Configuration::from_ids(ids.iter().copied()));

    for threads in THREAD_COUNTS {
        let mut m = InumModel::build_par(
            session.catalog(),
            workload,
            params.clone(),
            InumOptions::default(),
            Parallelism::fixed(threads),
        )
        .unwrap();
        let ids: Vec<_> = cands.iter().map(|c| m.register_candidate(c.clone())).collect();
        assert_bits_eq(
            m.workload_cost(&Configuration::empty()),
            empty_cost,
            &format!("{schema} empty-config cost, {threads} threads"),
        );
        assert_bits_eq(
            m.workload_cost(&Configuration::from_ids(ids)),
            full_cost,
            &format!("{schema} full-config cost, {threads} threads"),
        );
    }
}

fn check_index_suggestions(mk: fn() -> Parinda, workload: &[parinda::Select], schema: &str) {
    for method in [SelectionMethod::Ilp, SelectionMethod::Greedy] {
        let mut reference = None;
        for threads in THREAD_COUNTS {
            let mut session = mk();
            session.set_parallelism(Parallelism::fixed(threads));
            let budget = 2_u64 << 30;
            let sugg = session.suggest_indexes(workload, budget, method).unwrap();
            let fingerprint: Vec<(String, String, Vec<String>, u64)> = sugg
                .indexes
                .iter()
                .map(|i| (i.name.clone(), i.table.clone(), i.columns.clone(), i.size_bytes))
                .collect();
            let costs: Vec<(u64, u64)> = sugg
                .report
                .per_query
                .iter()
                .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
                .collect();
            match &reference {
                None => reference = Some((fingerprint, costs)),
                Some((rf, rc)) => {
                    assert_eq!(
                        rf, &fingerprint,
                        "{schema} {method:?} selection differs at {threads} threads"
                    );
                    assert_eq!(
                        rc, &costs,
                        "{schema} {method:?} per-query costs differ at {threads} threads"
                    );
                }
            }
        }
    }
}

fn check_partition_suggestions(mk: fn() -> Parinda, workload: &[parinda::Select], schema: &str) {
    let mut reference = None;
    for threads in THREAD_COUNTS {
        let mut session = mk();
        session.set_parallelism(Parallelism::fixed(threads));
        let sugg = session.suggest_partitions(workload, AutoPartConfig::default()).unwrap();
        let fingerprint: Vec<(String, String, Vec<String>)> = sugg
            .partitions
            .iter()
            .map(|p| (p.name.clone(), p.table.clone(), p.columns.clone()))
            .collect();
        let costs: Vec<(u64, u64)> = sugg
            .report
            .per_query
            .iter()
            .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
            .collect();
        let rewritten: Vec<String> = sugg.rewritten.iter().map(|s| s.to_string()).collect();
        match &reference {
            None => reference = Some((fingerprint, costs, rewritten, sugg.iterations)),
            Some((rf, rc, rw, ri)) => {
                assert_eq!(rf, &fingerprint, "{schema} design differs at {threads} threads");
                assert_eq!(rc, &costs, "{schema} partition costs differ at {threads} threads");
                assert_eq!(rw, &rewritten, "{schema} rewrites differ at {threads} threads");
                assert_eq!(*ri, sugg.iterations, "{schema} iterations differ at {threads} threads");
            }
        }
    }
}

/// A panicking parallel worker must not unwind the process, and must
/// surface as the **same** [`parinda::ParindaError`] at every thread
/// count: `par_try_map` evaluates all items and reports the
/// lowest-indexed panic regardless of scheduling.
#[test]
fn worker_panic_yields_identical_error_at_any_thread_count() {
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let items: Vec<usize> = (0..64).collect();
    let mut reference: Option<parinda::ParindaError> = None;
    for threads in THREAD_COUNTS {
        let panicked = parinda_parallel::par_try_map(
            Parallelism::fixed(threads),
            &items,
            |&i| {
                if i % 17 == 5 {
                    panic!("injected worker failure at item {i}");
                }
                i * 2
            },
        )
        .expect_err("workers 5, 22, 39, 56 panic");
        let err: parinda::ParindaError = panicked.into();
        match &reference {
            None => reference = Some(err),
            Some(r) => assert_eq!(r, &err, "error differs at {threads} threads"),
        }
    }

    std::panic::set_hook(quiet);
    let err = reference.expect("at least one thread count ran");
    assert_eq!(err.kind(), "internal");
    assert!(
        err.to_string().contains("item 5"),
        "lowest-indexed panic wins deterministically: {err}"
    );
}

/// Same guarantee one layer up: the INUM model build — the hot parallel
/// path every advisor runs on — reports a worker panic as a typed error,
/// identically at every thread count, with the session still usable.
#[test]
fn session_survives_worker_panic_via_guard() {
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = parinda::guard::<f64>(|| panic!("invariant breach deep in an advisor"));
    std::panic::set_hook(quiet);
    assert_eq!(
        r,
        Err(parinda::ParindaError::Internal(
            "invariant breach deep in an advisor".into()
        ))
    );
}

/// A *round-capped* budget is scheduling-independent by construction
/// (checked only at round boundaries, never against the clock), so an
/// interrupted run must return the **same** degraded best-so-far design
/// at any thread count.
#[test]
fn round_capped_ilp_degrades_identically_at_any_thread_count() {
    let workload = sdss_workload();
    let mut reference = None;
    for threads in THREAD_COUNTS {
        let mut session = sdss_session();
        session.set_parallelism(Parallelism::fixed(threads));
        session.set_budget_rounds(Some(3));
        let sugg = session
            .suggest_indexes(&workload, 2_u64 << 30, SelectionMethod::Ilp)
            .expect("budgeted advise must not error");
        assert!(sugg.degraded, "3 rounds cannot cover the SDSS search");
        assert!(!sugg.proven_optimal);
        let report = sugg.budget.clone().expect("degraded run carries a budget report");
        let fingerprint: Vec<(String, String, Vec<String>, u64)> = sugg
            .indexes
            .iter()
            .map(|i| (i.name.clone(), i.table.clone(), i.columns.clone(), i.size_bytes))
            .collect();
        let costs: Vec<(u64, u64)> = sugg
            .report
            .per_query
            .iter()
            .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
            .collect();
        let accounting = (report.rounds_completed, report.candidates_skipped);
        match &reference {
            None => reference = Some((fingerprint, costs, accounting)),
            Some((rf, rc, ra)) => {
                assert_eq!(rf, &fingerprint, "degraded selection differs at {threads} threads");
                assert_eq!(rc, &costs, "degraded costs differ at {threads} threads");
                assert_eq!(*ra, accounting, "budget accounting differs at {threads} threads");
            }
        }
    }
}

/// Same guarantee for AutoPart: one improvement round, identical
/// degraded design everywhere.
#[test]
fn round_capped_autopart_degrades_identically_at_any_thread_count() {
    let workload = sdss_workload();
    let mut reference = None;
    for threads in THREAD_COUNTS {
        let mut session = sdss_session();
        session.set_parallelism(Parallelism::fixed(threads));
        session.set_budget_rounds(Some(1));
        let sugg = session
            .suggest_partitions(&workload, AutoPartConfig::default())
            .expect("budgeted partitioning must not error");
        assert!(sugg.degraded, "one round cannot finish AutoPart on SDSS");
        let fingerprint: Vec<(String, String, Vec<String>)> = sugg
            .partitions
            .iter()
            .map(|p| (p.name.clone(), p.table.clone(), p.columns.clone()))
            .collect();
        let rewritten: Vec<String> = sugg.rewritten.iter().map(|s| s.to_string()).collect();
        match &reference {
            None => reference = Some((fingerprint, rewritten, sugg.iterations)),
            Some((rf, rw, ri)) => {
                assert_eq!(rf, &fingerprint, "degraded design differs at {threads} threads");
                assert_eq!(rw, &rewritten, "degraded rewrites differ at {threads} threads");
                assert_eq!(*ri, sugg.iterations, "iterations differ at {threads} threads");
            }
        }
    }
}

/// The observability layer is write-only: with a live recording trace
/// attached, the ILP selection and its bit-exact per-query costs are
/// still identical at every thread count (and identical to the
/// untraced reference the other tests pin).
#[test]
fn index_suggestions_identical_with_tracing_on() {
    let workload = sdss_workload();
    let mut reference = None;
    for threads in THREAD_COUNTS {
        let mut session = sdss_session();
        session.set_parallelism(Parallelism::fixed(threads));
        session.set_trace(parinda::Trace::recording());
        let sugg = session.suggest_indexes(&workload, 2_u64 << 30, SelectionMethod::Ilp).unwrap();
        let fingerprint: Vec<(String, String, Vec<String>, u64)> = sugg
            .indexes
            .iter()
            .map(|i| (i.name.clone(), i.table.clone(), i.columns.clone(), i.size_bytes))
            .collect();
        let costs: Vec<(u64, u64)> = sugg
            .report
            .per_query
            .iter()
            .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
            .collect();
        // the trace actually recorded this run
        assert!(session.trace().snapshot().counter(parinda::Counter::OptimizerInvocations) > 0);
        match &reference {
            None => reference = Some((fingerprint, costs)),
            Some((rf, rc)) => {
                assert_eq!(rf, &fingerprint, "traced selection differs at {threads} threads");
                assert_eq!(rc, &costs, "traced costs differ at {threads} threads");
            }
        }
    }
}

/// The sparse benefit matrix is a storage layout, not a semantics
/// change: the CSR path and the dense reference path
/// (`IlpOptions::dense_reference`) must select the **same indexes with
/// bit-identical per-query costs**, on both schemas, at every thread
/// count. One reference pins all twelve runs (2 layouts × 3 thread
/// counts × 2 schemas checked per schema), so this also re-proves
/// thread determinism of the sparse path.
fn check_sparse_dense_agreement(mk: fn() -> Parinda, workload: &[parinda::Select], schema: &str) {
    let mut reference = None;
    for threads in THREAD_COUNTS {
        for dense in [false, true] {
            let mut session = mk();
            session.set_parallelism(Parallelism::fixed(threads));
            let options = parinda::IlpOptions { dense_reference: dense, ..Default::default() };
            let sugg = session
                .suggest_indexes_with(workload, 2_u64 << 30, SelectionMethod::Ilp, &options)
                .unwrap();
            let fingerprint: Vec<(String, String, Vec<String>, u64)> = sugg
                .indexes
                .iter()
                .map(|i| (i.name.clone(), i.table.clone(), i.columns.clone(), i.size_bytes))
                .collect();
            let costs: Vec<(u64, u64)> = sugg
                .report
                .per_query
                .iter()
                .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
                .collect();
            match &reference {
                None => reference = Some((fingerprint, costs)),
                Some((rf, rc)) => {
                    assert_eq!(
                        rf, &fingerprint,
                        "{schema} selection differs (dense={dense}, {threads} threads)"
                    );
                    assert_eq!(
                        rc, &costs,
                        "{schema} per-query costs differ (dense={dense}, {threads} threads)"
                    );
                }
            }
        }
    }
}

#[test]
fn sdss_sparse_and_dense_ilp_agree_bit_identically() {
    check_sparse_dense_agreement(sdss_session, &sdss_workload(), "sdss");
}

#[test]
fn retail_sparse_and_dense_ilp_agree_bit_identically() {
    check_sparse_dense_agreement(retail_session, &retail_workload(), "retail");
}

#[test]
fn sdss_workload_cost_bit_identical() {
    check_workload_costs(sdss_session, &sdss_workload(), "sdss");
}

#[test]
fn retail_workload_cost_bit_identical() {
    check_workload_costs(retail_session, &retail_workload(), "retail");
}

#[test]
fn sdss_index_suggestions_identical() {
    check_index_suggestions(sdss_session, &sdss_workload(), "sdss");
}

#[test]
fn retail_index_suggestions_identical() {
    check_index_suggestions(retail_session, &retail_workload(), "retail");
}

#[test]
fn sdss_partition_suggestions_identical() {
    check_partition_suggestions(sdss_session, &sdss_workload(), "sdss");
}

#[test]
fn retail_partition_suggestions_identical() {
    check_partition_suggestions(retail_session, &retail_workload(), "retail");
}
