//! The daemon's contract (ROADMAP: the advisor as a service): many
//! concurrent wire sessions over one shared engine must be
//! **byte-identical** to a serial REPL session — shared INUM plan cache
//! on, per-request budgets enforced, one session's cancel or budget
//! never degrading another — and the daemon must never die, whatever
//! bytes a client throws at it.
//!
//! Byte identity is checked through the server's own frame encoder
//! ([`parinda_server::frame_reply`]): the expected transcript is a
//! plain `Console` run encoded with the same function, so any drift
//! between the wire path and the console path fails the diff. The only
//! scrubbing is the wall-clock milliseconds inside `DEGRADED:` budget
//! lines (and the frame byte-counts that shift with those digits).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use parinda::{Console, ConsoleReply, SharedEngine};
use parinda_catalog::MetadataProvider;
use parinda_server::{frame_reply, greeting, Server, ServerOptions};

const TINY_DDL: &str =
    "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION, dec DOUBLE PRECISION,
                       flags BIGINT, PRIMARY KEY (id)) ROWS 5000;
     CREATE TABLE src (id BIGINT NOT NULL, mag DOUBLE PRECISION, PRIMARY KEY (id)) ROWS 800;";

const WORKLOAD: &str = "SELECT id FROM obs WHERE ra BETWEEN 1 AND 2;
SELECT id FROM obs WHERE dec > 0.5;
SELECT id FROM src WHERE mag <= 3;";

/// The replayed session: metadata, what-if staging, both advisors, a
/// deterministically degraded (round-capped) run, and two error paths.
const SCRIPT: &[&str] = &[
    "show tables",
    "workload file {wl}",
    "workload stats",
    "whatif index w_ra obs ra",
    "show design",
    "explain select id from obs where ra between 1 and 2",
    "eval",
    "suggest indexes 64 ilp",
    "suggest indexes 64 greedy",
    "suggest partitions",
    "budget rounds 1",
    "suggest indexes 64 greedy",
    "budget off",
    "suggest drops",
    "explain selec id frm obs",
    "describe no_such_table",
];

fn engine() -> SharedEngine {
    SharedEngine::from_ddl(TINY_DDL).expect("fixed DDL parses")
}

fn workload_file(name: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, WORKLOAD).expect("temp workload file");
    path.display().to_string()
}

/// Scrub the wall-clock number in a `… after 12.3 ms: …` budget line,
/// byte-preserving everything else.
fn scrub_ms(line: &str) -> String {
    if let Some(pos) = line.find(" ms:") {
        let head = &line[..pos];
        if let Some(sp) = head.rfind(' ') {
            if head[sp + 1..].parse::<f64>().is_ok() {
                return format!("{}<time>{}", &line[..=sp], &line[pos..]);
            }
        }
    }
    line.to_string()
}

/// Canonicalize a wire byte stream: parse the frames, drop the payload
/// byte-counts (they shift with scrubbed digits), scrub budget
/// milliseconds. Everything else must match byte for byte.
fn canonical(bytes: &[u8]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let nl = bytes[i..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| i + p)
            .expect("frame header is newline-terminated");
        let header = String::from_utf8_lossy(&bytes[i..nl]).into_owned();
        i = nl + 1;
        let n: usize = header
            .rsplit(' ')
            .next()
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("unsized frame header {header:?}"));
        assert!(i + n <= bytes.len(), "frame payload truncated at {header:?}");
        let payload = String::from_utf8_lossy(&bytes[i..i + n]).into_owned();
        i += n;
        let kind = header.rsplit_once(' ').map(|(k, _)| k.to_string()).unwrap_or(header);
        out.push_str(&kind);
        out.push('\n');
        for line in payload.split_inclusive('\n') {
            out.push_str(&scrub_ms(line));
        }
    }
    out
}

/// The expected transcript: a plain serial console run over a *private*
/// engine, encoded through the server's own frame encoder.
fn serial_transcript(wl: &str) -> Vec<u8> {
    let mut console = Console::with_engine(&engine());
    let mut out = greeting();
    for line in SCRIPT {
        out.extend(frame_reply(&console.run_line(&line.replace("{wl}", wl))));
    }
    out.extend(frame_reply(&console.run_line("quit")));
    out
}

/// Connect, replay the script, return the connection's full byte stream.
fn replay_client(addr: SocketAddr, wl: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
    let mut script: String =
        SCRIPT.iter().map(|l| format!("{}\n", l.replace("{wl}", wl))).collect();
    script.push_str("quit\n");
    stream.write_all(script.as_bytes()).expect("send script");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("drain connection");
    buf
}

/// The tentpole acceptance check: 8 concurrent wire sessions, one
/// shared engine (plan cache on), every transcript byte-identical to
/// the serial console run.
#[test]
fn eight_concurrent_sessions_replay_byte_identical_to_serial() {
    let wl = workload_file("parinda_server_replay_wl.sql");
    let expected = canonical(&serial_transcript(&wl));
    assert!(expected.contains("DEGRADED"), "script must exercise a degraded budget path");
    assert!(expected.contains("error [parse]:"), "script must exercise a parse error");
    assert!(expected.contains("error [catalog]:"), "script must exercise a catalog error");

    // Keep a clone of the engine: it shares the server's core (and its
    // plan-cache counters), so attribution is observable from outside.
    let shared = engine();
    let server =
        Server::bind(shared.clone(), "127.0.0.1:0", ServerOptions::default()).expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let wl = wl.clone();
            std::thread::spawn(move || replay_client(addr, &wl))
        })
        .collect();
    for (i, c) in clients.into_iter().enumerate() {
        let stream = c.join().expect("client thread");
        assert_eq!(
            canonical(&stream),
            expected,
            "client {i}'s wire transcript diverged from the serial console"
        );
    }
    // Cross-session cache reuse: 3 templates built once, shared by all 8
    // sessions. Exactly 3 entries; every build after the first 3 is a hit.
    assert_eq!(shared.plan_cache_entries(), 3, "one cache entry per workload template");
    assert!(shared.plan_cache_misses() >= 3);
    assert!(
        shared.plan_cache_hits() >= shared.plan_cache_misses(),
        "8 sessions × repeated builds should mostly hit: hits={} misses={}",
        shared.plan_cache_hits(),
        shared.plan_cache_misses()
    );
    handle.shutdown().expect("clean shutdown");
}

/// Satellite: two interleaved sessions on one engine can never observe
/// each other's staged what-if designs, budgets, or cancellation.
#[test]
fn sessions_cannot_observe_each_others_state() {
    let eng = engine();
    let mut a = Console::with_engine(&eng);
    let mut b = Console::with_engine(&eng);

    // Interleaved what-if staging stays private.
    assert!(matches!(a.run_line("whatif index w_ra obs ra"), ConsoleReply::Output(_)));
    match b.run_line("show design") {
        ConsoleReply::Output(s) => assert_eq!(s, "empty design", "b sees a's staged design"),
        other => panic!("{other:?}"),
    }
    assert!(matches!(b.run_line("whatif index w_dec obs dec"), ConsoleReply::Output(_)));
    match a.run_line("show design") {
        ConsoleReply::Output(s) => {
            assert!(s.contains("w_ra") && !s.contains("w_dec"), "a's design leaked: {s}")
        }
        other => panic!("{other:?}"),
    }

    // Budgets are per session.
    a.run_line("budget rounds 1");
    match b.run_line("budget") {
        ConsoleReply::Output(s) => assert!(s.contains("off"), "a's budget leaked to b: {s}"),
        other => panic!("{other:?}"),
    }

    // Cancellation is per session: a pre-armed cancel on `a` must not
    // degrade b's advisor run.
    let wl = workload_file("parinda_server_isolation_wl.sql");
    a.run_line("budget off");
    for c in [&mut a, &mut b] {
        assert!(matches!(
            c.run_line(&format!("workload file {wl}")),
            ConsoleReply::Output(_)
        ));
    }
    a.run_line("cancel");
    let b_reply = match b.run_line("suggest indexes 64 ilp") {
        ConsoleReply::Output(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(!b_reply.contains("DEGRADED"), "a's cancel degraded b's run: {b_reply}");
    let a_reply = match a.run_line("suggest indexes 64 ilp") {
        ConsoleReply::Output(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(a_reply.contains("DEGRADED"), "a's own pre-armed cancel was lost: {a_reply}");

    // Metadata mutation detaches onto a private copy-on-write core: the
    // shared engine (and the other session) never see it.
    let mut s = eng.session();
    s.execute_ddl("CREATE TABLE private_overlay (x BIGINT NOT NULL, PRIMARY KEY (x)) ROWS 10;")
        .expect("overlay ddl");
    assert!(s.catalog().table_by_name("private_overlay").is_some());
    assert!(eng.catalog().table_by_name("private_overlay").is_none());
    assert!(eng.session().catalog().table_by_name("private_overlay").is_none());
}

/// Per-connection cancel scoping over the wire: an armed cancel on
/// session A degrades A's next run and leaves session B byte-identical
/// to the serial console.
#[test]
fn wire_cancel_is_scoped_to_its_connection() {
    let wl = workload_file("parinda_server_cancel_wl.sql");
    let server =
        Server::bind(engine(), "127.0.0.1:0", ServerOptions::default()).expect("bind");
    let handle = server.spawn().expect("spawn");

    let run = |lines: &str| -> Vec<u8> {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
        stream.write_all(lines.as_bytes()).expect("send");
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("drain");
        buf
    };

    // A arms cancellation at the prompt, then runs the advisor.
    let a = run(&format!("workload file {wl}\ncancel\nsuggest indexes 64 ilp\nquit\n"));
    let a_text = canonical(&a);
    assert!(a_text.contains("DEGRADED"), "armed cancel did not degrade A's run: {a_text}");

    // B, on the same engine, must match a serial console run exactly.
    let b = run(&format!("workload file {wl}\nsuggest indexes 64 ilp\nquit\n"));
    let mut console = Console::with_engine(&engine());
    let mut expected = greeting();
    for line in [format!("workload file {wl}"), "suggest indexes 64 ilp".into(), "quit".into()]
    {
        expected.extend(frame_reply(&console.run_line(&line)));
    }
    assert_eq!(canonical(&b), canonical(&expected), "A's cancel leaked into B's session");
    handle.shutdown().expect("clean shutdown");
}

/// The server-wide budget cap admits every request but bounds its work:
/// a session that set no budget of its own still degrades under the cap,
/// and the daemon survives to serve the next request.
#[test]
fn server_budget_cap_bounds_unbudgeted_sessions() {
    let wl = workload_file("parinda_server_cap_wl.sql");
    let server = Server::bind(
        engine(),
        "127.0.0.1:0",
        ServerOptions { max_budget_ms: Some(0), ..ServerOptions::default() },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
    stream
        .write_all(format!("workload file {wl}\nsuggest indexes 64 ilp\nshow tables\nquit\n").as_bytes())
        .expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("drain");
    let text = canonical(&buf);
    assert!(text.contains("DEGRADED"), "server budget cap was not enforced: {text}");
    assert!(text.contains("obs"), "daemon did not survive the capped request: {text}");
    handle.shutdown().expect("clean shutdown");
}

/// Deterministic cache attribution: a second session replaying the same
/// advisor run is served entirely from the shared plan cache — same
/// bytes, zero fresh builds.
#[test]
fn shared_plan_cache_serves_repeat_builds() {
    let wl = workload_file("parinda_server_cache_wl.sql");
    let eng = engine();
    let run = |eng: &SharedEngine| -> String {
        let mut c = Console::with_engine(eng);
        c.run_line(&format!("workload file {wl}"));
        match c.run_line("suggest indexes 64 greedy") {
            ConsoleReply::Output(s) => s,
            other => panic!("{other:?}"),
        }
    };
    let cold = run(&eng);
    assert_eq!(eng.plan_cache_misses(), 3, "one miss per workload template");
    assert_eq!(eng.plan_cache_hits(), 0);
    assert_eq!(eng.plan_cache_entries(), 3);
    let warm = run(&eng);
    assert_eq!(cold, warm, "warm cache changed the advisor's answer");
    assert_eq!(eng.plan_cache_misses(), 3, "warm run rebuilt a cached template");
    assert_eq!(eng.plan_cache_hits(), 3, "warm run was not served from the cache");
}

/// Satellite: shutdown must *drain* in-flight workers, not race them.
/// [`parinda_server::ServerHandle::shutdown`] returns the stats report
/// rendered only after every reader+worker pair was joined and the
/// final snapshot taken — so asserting `worker_panics_recovered 0` and
/// `sessions_active 0` on it proves no worker was abandoned mid-request
/// by the shutdown path.
#[test]
fn shutdown_drains_inflight_workers_cleanly() {
    let wl = workload_file("parinda_server_drain_wl.sql");
    let server =
        Server::bind(engine(), "127.0.0.1:0", ServerOptions::default()).expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();
    // Three clients fire an advisor run each and hold the connection
    // open (no `quit`), so shutdown lands with requests in flight.
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let wl = wl.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
                stream
                    .write_all(
                        format!("workload file {wl}\nsuggest indexes 64 ilp\n").as_bytes(),
                    )
                    .expect("send");
                let mut buf = Vec::new();
                stream.read_to_end(&mut buf).ok(); // server closes the stream on drain
                buf
            })
        })
        .collect();
    // Let the requests reach the workers before pulling the plug.
    std::thread::sleep(Duration::from_millis(150));
    let stats = handle.shutdown().expect("clean shutdown");
    assert!(
        stats.contains("worker_panics_recovered 0"),
        "shutdown raced an in-flight worker into a panic:\n{stats}"
    );
    assert!(
        stats.contains("sessions_active 0"),
        "shutdown returned before every session drained:\n{stats}"
    );
    for c in clients {
        c.join().expect("client thread");
    }
}

/// No byte sequence a client sends may kill the daemon (the wire
/// rendition of the console's no-panic contract).
#[test]
fn wire_fuzz_never_kills_the_daemon() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let server =
        Server::bind(engine(), "127.0.0.1:0", ServerOptions::default()).expect("bind");
    let handle = server.spawn().expect("spawn");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut w = stream.try_clone().expect("clone");
    let mut r = std::io::BufReader::new(stream);

    // One frame per request line, whatever the line was.
    let read_header = |r: &mut std::io::BufReader<TcpStream>| -> String {
        use std::io::BufRead;
        let mut header = String::new();
        r.read_line(&mut header).expect("frame header");
        let n: usize = header
            .trim_end()
            .rsplit(' ')
            .next()
            .and_then(|x| x.parse().ok())
            .unwrap_or_else(|| panic!("unsized frame header {header:?}"));
        let mut payload = vec![0u8; n];
        r.read_exact(&mut payload).expect("frame payload");
        header.trim_end().to_string()
    };
    assert!(read_header(&mut r).starts_with("ok "), "greeting");

    let mut rng = StdRng::seed_from_u64(0x5eed);
    const CHARS: &[u8] =
        b"abcdefghijklmnopqrstuvwxyz0123456789 \t!@#$%^&*()_+-=[]{};:'\",.<>/?\\|`~";
    for _ in 0..200 {
        let len = rng.gen::<usize>() % 80;
        let mut line: String = (0..len)
            .map(|_| CHARS[rng.gen::<usize>() % CHARS.len()] as char)
            .collect();
        // keep the connection (and daemon) alive for the whole fuzz run
        let t = line.trim().to_ascii_lowercase();
        if ["quit", "exit", "q", "server shutdown", "cancel"].contains(&t.as_str()) {
            line = format!("fuzz-{line}");
        }
        w.write_all(format!("{line}\n").as_bytes()).expect("send fuzz line");
        let header = read_header(&mut r);
        assert!(
            header.starts_with("ok ") || header.starts_with("err "),
            "unexpected frame {header:?} for input {line:?}"
        );
    }
    // The session (and daemon) must still be fully functional.
    w.write_all(b"show tables\n").expect("send");
    assert!(read_header(&mut r).starts_with("ok "));
    w.write_all(b"quit\n").expect("send");
    assert_eq!(read_header(&mut r), "bye 0");
    handle.shutdown().expect("clean shutdown");
}

/// Deadlock canary: the runtime counterpart of the `lock-order`
/// static analysis (DESIGN.md, "Lock discipline & the lock-order
/// contract"). A durable daemon with per-record snapshots walks the
/// longest lock chain in the workspace (`Durable.journal` →
/// `Wal.inner`, plus the session/cache locks) on *every* journaled
/// command; concurrent clients hammer that chain from every angle —
/// journaled writes, advisor runs, cancels, transcript reads, refused
/// attaches — while a failpoint widens the snapshot window (a no-op
/// stub unless the `failpoints` feature is on). If any lock-order
/// regression ever deadlocks the daemon, the watchdog turns the hang
/// into a failure with per-client progress, instead of a wedged CI
/// job. (std can't capture another thread's backtrace, so the step
/// counters are the diagnosis we can give.)
#[test]
fn deadlock_canary_under_snapshot_pressure() {
    use parinda_server::Durability;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    parinda_failpoint::set("wal::snapshot", parinda_failpoint::Action::Delay(10));
    let wl = workload_file("parinda_server_canary_wl.sql");
    let dir = std::env::temp_dir().join(format!("parinda_canary_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("canary data dir");
    let mut dur =
        Durability::open(&dir, &format!("ddl\n{TINY_DDL}")).expect("open durability");
    dur.snapshot_every = 1; // snapshot on every journaled record
    let server = Server::bind_durable(engine(), "127.0.0.1:0", ServerOptions::default(), dur)
        .expect("bind durable");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    const CLIENTS: usize = 6;
    const ROUNDS: usize = 8;
    let progress: Arc<Vec<AtomicUsize>> =
        Arc::new((0..CLIENTS).map(|_| AtomicUsize::new(0)).collect());
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    for id in 0..CLIENTS {
        let tx = tx.clone();
        let wl = wl.clone();
        let progress = Arc::clone(&progress);
        std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
            let mut w = stream.try_clone().expect("clone");
            let mut r = std::io::BufReader::new(stream);
            let read_frame = |r: &mut std::io::BufReader<TcpStream>| {
                use std::io::BufRead;
                let mut header = String::new();
                r.read_line(&mut header).expect("frame header");
                let n: usize = header
                    .trim_end()
                    .rsplit(' ')
                    .next()
                    .and_then(|x| x.parse().ok())
                    .unwrap_or_else(|| panic!("unsized frame header {header:?}"));
                let mut payload = vec![0u8; n];
                r.read_exact(&mut payload).expect("frame payload");
            };
            read_frame(&mut r); // greeting
            w.write_all(format!("workload file {wl}\n").as_bytes()).expect("send");
            read_frame(&mut r);
            for round in 0..ROUNDS {
                // Each line is one journaled write (snapshot pressure),
                // one advisor run, or one meta-command — every lock in
                // the declared order gets exercised concurrently.
                let lines = [
                    format!("whatif index c{id}_{round} obs ra"),
                    "server transcript".to_string(),
                    "cancel".to_string(),
                    "suggest indexes 4 greedy".to_string(),
                    "server attach 9999".to_string(),
                ];
                for (step, line) in lines.iter().enumerate() {
                    w.write_all(format!("{line}\n").as_bytes()).expect("send");
                    read_frame(&mut r);
                    progress[id].store(round * lines.len() + step + 1, Ordering::Relaxed);
                }
            }
            w.write_all(b"quit\n").expect("send");
            read_frame(&mut r);
            tx.send(id).expect("report completion");
        });
    }
    drop(tx);

    let mut done = [false; CLIENTS];
    for _ in 0..CLIENTS {
        match rx.recv_timeout(Duration::from_secs(180)) {
            Ok(id) => done[id] = true,
            Err(_) => {
                let status: Vec<String> = (0..CLIENTS)
                    .map(|i| {
                        format!(
                            "  client {i}: {} step(s) done, finished={}",
                            progress[i].load(Ordering::Relaxed),
                            done[i]
                        )
                    })
                    .collect();
                panic!(
                    "deadlock canary tripped: a client made no progress within 180s \
                     (daemon likely deadlocked on the journal/WAL/session locks)\n{}",
                    status.join("\n")
                );
            }
        }
    }
    handle.shutdown().expect("clean shutdown");
    parinda_failpoint::clear("wal::snapshot");
    std::fs::remove_dir_all(&dir).ok();
}
