//! Crash-safe durability contract (ISSUE 8 tentpole): the daemon's
//! engine and sessions are a deterministic product of the bootstrap
//! spec plus the journaled console commands, so recovery is replay.
//!
//! Three layers are proven here:
//!
//! * **Torn-tail fuzz** — the WAL reader never panics or misparses,
//!   whatever a crash left at the tail: truncation at *every* byte
//!   offset of the last record and a flip of *every* bit of it must
//!   recover to the preceding record boundary, flagged via
//!   `truncated_tail`.
//! * **Restart round-trip** (in-process) — a session abandoned without
//!   `quit` is restorable after a clean restart: `server attach`
//!   adopts the replayed console, `server transcript` returns its
//!   journaled history, and the staged what-if state survives.
//! * **SIGKILL harness** (real binary) — a daemon killed with SIGKILL
//!   right after acknowledging journaled commands recovers to the same
//!   attach reply, transcript, session state, and engine generation as
//!   an uncrashed reference daemon that shut down gracefully.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use parinda_wal::{DataDir, Record, WAL_FILE};

const TINY_DDL: &str =
    "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION, dec DOUBLE PRECISION,
                       flags BIGINT, PRIMARY KEY (id)) ROWS 5000;
     CREATE TABLE src (id BIGINT NOT NULL, mag DOUBLE PRECISION, PRIMARY KEY (id)) ROWS 800;";

fn tmpdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "parinda_durability_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

/// Read one `ok/err/bye` wire frame as one string.
fn read_frame(r: &mut impl BufRead) -> Option<String> {
    let mut header = String::new();
    if r.read_line(&mut header).ok()? == 0 {
        return None;
    }
    let n: usize = header.trim_end().rsplit(' ').next()?.parse().ok()?;
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload).ok()?;
    Some(format!("{header}{}", String::from_utf8_lossy(&payload)))
}

/// Satellite: a crash can leave *anything* at the WAL tail. For a log
/// of N records, every truncation point inside the last record and
/// every single-bit corruption of it must recover exactly the first
/// N-1 records, count one truncated tail, and never panic.
#[test]
fn torn_tail_recovers_at_the_previous_boundary_for_every_offset() {
    // Build a healthy log of 7 records (bootstrap, open, 5 commands).
    let dir = tmpdir("fuzz_src");
    let dd = DataDir::open(&dir).expect("open data dir");
    let wal = dd.open_wal(&dd.recover().expect("fresh recover")).expect("open wal");
    let mut last_bytes = 0;
    let mut last_lsn = 0;
    let mut records: Vec<Record> = vec![Record::Bootstrap("paper".into()), Record::Open(1)];
    for i in 0..5u64 {
        records.push(Record::Cmd { session: 1, line: format!("threads {}", i + 1) });
    }
    for rec in &records {
        let appended = wal.append(rec).expect("append");
        wal.sync(appended.lsn).expect("sync");
        last_bytes = appended.bytes;
        last_lsn = appended.lsn;
    }
    assert_eq!(last_lsn, records.len() as u64);
    let healthy = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
    std::fs::remove_dir_all(&dir).ok();
    let last_start = healthy.len() - last_bytes as usize;

    // The expected survivor state: everything but the last command.
    let expected_cmds: Vec<String> = (0..4).map(|i| format!("threads {}", i + 1)).collect();

    let recover_bytes = |bytes: &[u8]| -> parinda_wal::Recovery {
        let d = tmpdir("fuzz_case");
        std::fs::write(d.join(WAL_FILE), bytes).expect("write corrupt wal");
        let recovery = DataDir::open(&d).expect("open").recover().expect("recover never errors");
        std::fs::remove_dir_all(&d).ok();
        recovery
    };

    let check = |recovery: &parinda_wal::Recovery, what: &str| {
        assert_eq!(
            recovery.replayed_records,
            (records.len() - 1) as u64,
            "{what}: wrong number of surviving records"
        );
        assert_eq!(recovery.truncated_tail, 1, "{what}: tail not flagged");
        assert_eq!(recovery.next_lsn, last_lsn, "{what}: wrong resume LSN");
        assert_eq!(recovery.wal_good_bytes, last_start as u64, "{what}: wrong good prefix");
        assert_eq!(
            recovery.sessions.get(&1).map(Vec::as_slice),
            Some(&expected_cmds[..]),
            "{what}: surviving commands are not the exact prefix"
        );
    };

    // Truncation at every byte offset strictly inside the last record.
    for cut in last_start + 1..healthy.len() {
        check(&recover_bytes(&healthy[..cut]), &format!("truncate at {cut}"));
    }
    // Truncation exactly at the record boundary is not torn at all.
    let clean = recover_bytes(&healthy[..last_start]);
    assert_eq!(clean.truncated_tail, 0, "boundary truncation flagged as torn");
    assert_eq!(clean.replayed_records, (records.len() - 1) as u64);

    // Every single-bit flip inside the last record. CRC32 detects all
    // single-bit payload corruption, and header corruption lands on the
    // short-frame / insane-length / checksum paths — all of which must
    // cut the tail at the same boundary.
    for offset in last_start..healthy.len() {
        for bit in 0..8u8 {
            let mut corrupt = healthy.clone();
            corrupt[offset] ^= 1 << bit;
            check(
                &recover_bytes(&corrupt),
                &format!("flip bit {bit} of byte {offset}"),
            );
        }
    }
}

/// Tentpole round-trip, in process: journal → abrupt disconnect →
/// clean restart → `server attach` → the session state is back.
#[test]
fn restart_restores_abandoned_sessions_for_attach() {
    use parinda_server::{Durability, Server, ServerOptions};
    let dir = tmpdir("roundtrip");
    let bootstrap = format!("ddl\n{TINY_DDL}");

    // First daemon: one session stages a what-if index, then vanishes
    // without `quit` (an abrupt disconnect must stay restorable).
    {
        let engine = parinda::SharedEngine::from_ddl(TINY_DDL).expect("ddl");
        let dur = Durability::open(&dir, &bootstrap).expect("open durability");
        let server =
            Server::bind_durable(engine, "127.0.0.1:0", ServerOptions::default(), dur)
                .expect("bind durable");
        let handle = server.spawn().expect("spawn");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        let mut w = stream.try_clone().expect("clone");
        let mut r = BufReader::new(stream);
        read_frame(&mut r).expect("greeting");
        w.write_all(b"whatif index w_ra obs ra\nshow design\n").expect("send");
        let whatif = read_frame(&mut r).expect("whatif reply");
        assert!(whatif.contains("w_ra added"), "{whatif}");
        read_frame(&mut r).expect("show design reply");
        drop((w, r)); // hang up without quit
        let stats = handle.shutdown().expect("clean shutdown");
        assert!(stats.contains("durability on"), "daemon not durable:\n{stats}");
    }

    // Second daemon on the same dir: the session is waiting.
    let engine = parinda::SharedEngine::from_ddl(TINY_DDL).expect("ddl");
    let dur = Durability::open(&dir, "none").expect("reopen durability");
    assert_eq!(dur.bootstrap, bootstrap, "recorded bootstrap must win over the caller's");
    let server = Server::bind_durable(engine, "127.0.0.1:0", ServerOptions::default(), dur)
        .expect("bind durable");
    let handle = server.spawn().expect("spawn");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut w = stream.try_clone().expect("clone");
    let mut r = BufReader::new(stream);
    read_frame(&mut r).expect("greeting");

    w.write_all(b"server stats\n").expect("send");
    let stats = read_frame(&mut r).expect("stats");
    assert!(stats.contains("durability on"), "{stats}");
    assert!(stats.contains("restorable_sessions 1"), "{stats}");

    w.write_all(b"server attach 1\nserver transcript\nshow design\n").expect("send");
    let attach = read_frame(&mut r).expect("attach");
    assert!(
        attach.contains("attached durable session 1: 1 journaled command(s) replayed"),
        "{attach}"
    );
    let transcript = read_frame(&mut r).expect("transcript");
    assert!(transcript.contains("whatif index w_ra obs ra"), "{transcript}");
    let design = read_frame(&mut r).expect("design");
    assert!(design.contains("w_ra"), "staged what-if state lost in recovery: {design}");

    // The session is taken: a second attach must be refused, typed.
    let stream2 = TcpStream::connect(handle.addr()).expect("connect 2");
    stream2.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut w2 = stream2.try_clone().expect("clone");
    let mut r2 = BufReader::new(stream2);
    read_frame(&mut r2).expect("greeting 2");
    w2.write_all(b"server attach 1\n").expect("send");
    let refused = read_frame(&mut r2).expect("refusal");
    assert!(refused.starts_with("err io"), "{refused}");
    assert!(refused.contains("no restorable session 1"), "{refused}");

    // A clean quit journals the close: after the next restart the
    // session is gone for good.
    w.write_all(b"quit\n").expect("send");
    read_frame(&mut r).expect("bye");
    drop((w, r, w2, r2));
    handle.shutdown().expect("clean shutdown");

    let dur = Durability::open(&dir, "none").expect("reopen after quit");
    assert!(dur.recovery.sessions.is_empty(), "quit session came back: {:?}", dur.recovery.sessions);
    std::fs::remove_dir_all(&dir).ok();
}

/// A daemon spawned from the real binary, with its announced address.
struct Daemon {
    child: Child,
    addr: String,
}

fn spawn_daemon(data_dir: &Path, ddl_path: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_parinda-cli"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--load",
            &format!("ddl:{}", ddl_path.display()),
            "--data-dir",
            &data_dir.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("stdout"))
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad announcement {line:?}"))
        .to_string();
    Daemon { child, addr }
}

/// Run `lines` over one connection and return the reply frames
/// (greeting excluded). Every reply is read back, so each journaled
/// command is known fsynced-and-applied before the caller proceeds.
fn wire(addr: &str, lines: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut w = stream.try_clone().expect("clone");
    let mut r = BufReader::new(stream);
    read_frame(&mut r).expect("greeting");
    let mut out = Vec::new();
    for line in lines {
        w.write_all(format!("{line}\n").as_bytes()).expect("send");
        out.push(read_frame(&mut r).expect("reply"));
    }
    out
}

/// Extract the stable durability/identity lines from a `server stats`
/// reply for crashed-vs-reference comparison (counter magnitudes like
/// `wal_records` legitimately differ: the reference took extra
/// snapshots on its graceful shutdown).
fn stable_stats(stats: &str) -> BTreeMap<String, String> {
    stats
        .lines()
        .filter_map(|l| l.split_once(' '))
        .filter(|(k, _)| matches!(*k, "durability" | "engine_generation" | "restorable_sessions"))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Tentpole acceptance: SIGKILL the live daemon after it acknowledged
/// journaled commands; the recovered daemon must be indistinguishable
/// (attach reply, transcript, session state, engine generation) from a
/// reference daemon that never crashed.
#[cfg(unix)]
#[test]
fn sigkill_recovery_is_bit_identical_to_uncrashed_reference() {
    let ddl_path = std::env::temp_dir().join("parinda_durability_sigkill.sql");
    std::fs::write(&ddl_path, TINY_DDL).expect("ddl file");
    const SCRIPT: &[&str] =
        &["whatif index w_ra obs ra", "whatif partition p_obs obs ra", "threads 3"];
    const PROBE: &[&str] =
        &["server attach 1", "server transcript", "show design", "server stats"];

    // Crashed run: replies acknowledged, then SIGKILL (no drain, no
    // shutdown snapshot — recovery must come from the WAL tail).
    let crash_dir = tmpdir("sigkill_crash");
    let mut daemon = spawn_daemon(&crash_dir, &ddl_path);
    let crash_replies = wire(&daemon.addr, SCRIPT);
    daemon.child.kill().expect("SIGKILL");
    daemon.child.wait().expect("reap");

    // Reference run: same commands, graceful shutdown.
    let ref_dir = tmpdir("sigkill_ref");
    let mut reference = spawn_daemon(&ref_dir, &ddl_path);
    let ref_replies = wire(&reference.addr, SCRIPT);
    assert_eq!(crash_replies, ref_replies, "pre-crash replies already diverged");
    wire(&reference.addr, &["server shutdown"]);
    reference.child.wait().expect("reference daemon exits");

    // Restart both and probe: byte-identical recovered state.
    let probe = |dir: &Path| -> Vec<String> {
        let daemon = spawn_daemon(dir, &ddl_path);
        let mut replies = wire(&daemon.addr, PROBE);
        wire(&daemon.addr, &["server shutdown"]);
        let mut child = daemon.child;
        child.wait().expect("probed daemon exits");
        // The stats frame carries run-dependent counters; reduce it to
        // the stable identity lines before comparison.
        let stats = replies.pop().expect("stats reply");
        assert!(stats.contains("durability on"), "recovered daemon not durable: {stats}");
        replies.push(format!("{:?}", stable_stats(&stats)));
        replies
    };
    let crashed = probe(&crash_dir);
    let uncrashed = probe(&ref_dir);
    assert_eq!(
        crashed, uncrashed,
        "SIGKILL recovery diverged from the uncrashed reference"
    );
    assert!(
        crashed[0].contains(&format!(
            "attached durable session 1: {} journaled command(s) replayed",
            SCRIPT.len()
        )),
        "wrong replay count: {}",
        crashed[0]
    );
    assert_eq!(
        crashed[1].lines().skip(1).collect::<Vec<_>>(),
        SCRIPT.to_vec(),
        "recovered transcript is not the journaled command list"
    );

    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_file(&ddl_path).ok();
}

/// Scrub advisor wall times (`… after 0.4 ms …`) from a reply so the
/// crashed and uncrashed daemons can be compared byte for byte —
/// everything else in an epoch reply is deterministic.
fn scrub_times(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let mut scrubbed: Vec<&str> = Vec::with_capacity(toks.len());
        let mut i = 0;
        while i < toks.len() {
            let bare = toks[i].trim_end_matches([':', ',', ';']);
            let unit = toks.get(i + 1).map(|u| u.trim_end_matches([':', ',', ';']));
            if bare.parse::<f64>().is_ok() && matches!(unit, Some("ms" | "s" | "us" | "ns")) {
                scrubbed.push("<time>");
                i += 2;
            } else {
                scrubbed.push(toks[i]);
                i += 1;
            }
        }
        out.push_str(&scrubbed.join(" "));
        out.push('\n');
    }
    out
}

/// Streaming continuation of the SIGKILL contract (the continuous-tuning
/// tentpole): kill the daemon *mid-epoch* — one epoch committed and
/// re-advised, two feeds acknowledged but not yet folded in — and the
/// recovered stream must be indistinguishable from an uncrashed
/// reference: same constraint store, same pending statements, same
/// drift, and the epoch closed *after* recovery produces the same
/// design, still honoring the pin and the ban journaled before the
/// crash.
#[cfg(unix)]
#[test]
fn sigkill_mid_epoch_recovers_streaming_state_and_constraints() {
    let ddl_path = std::env::temp_dir().join("parinda_durability_stream.sql");
    std::fs::write(&ddl_path, TINY_DDL).expect("ddl file");
    const SCRIPT: &[&str] = &[
        "advise auto on",
        "advise budget 64",
        "pin obs(ra)",
        "ban src(mag)",
        "feed select id from obs where ra between 1 and 2",
        "feed select id from obs where ra between 30 and 40",
        "epoch", // drift maximal on the first epoch → auto re-advise
        "feed select id from obs where dec > 0.5",
        "feed select id from obs where dec > 0.7", // pending at the crash
    ];
    const PROBE: &[&str] =
        &["server attach 1", "server transcript", "drift", "epoch", "server stats"];

    let crash_dir = tmpdir("stream_crash");
    let mut daemon = spawn_daemon(&crash_dir, &ddl_path);
    let crash_replies = wire(&daemon.addr, SCRIPT);
    daemon.child.kill().expect("SIGKILL");
    daemon.child.wait().expect("reap");

    let ref_dir = tmpdir("stream_ref");
    let mut reference = spawn_daemon(&ref_dir, &ddl_path);
    let ref_replies = wire(&reference.addr, SCRIPT);
    assert_eq!(
        crash_replies.iter().map(|r| scrub_times(r)).collect::<Vec<_>>(),
        ref_replies.iter().map(|r| scrub_times(r)).collect::<Vec<_>>(),
        "pre-crash replies already diverged"
    );
    // The pre-crash epoch already enforced the constraints.
    let epoch_reply = &crash_replies[6];
    assert!(epoch_reply.contains("re-advising"), "{epoch_reply}");
    assert!(epoch_reply.contains("CREATE INDEX idx_obs_ra ON obs (ra)"), "{epoch_reply}");
    assert!(!epoch_reply.contains("idx_src_mag"), "banned index advised: {epoch_reply}");
    wire(&reference.addr, &["server shutdown"]);
    reference.child.wait().expect("reference daemon exits");

    let probe = |dir: &Path| -> Vec<String> {
        let daemon = spawn_daemon(dir, &ddl_path);
        let mut replies = wire(&daemon.addr, PROBE);
        wire(&daemon.addr, &["server shutdown"]);
        let mut child = daemon.child;
        child.wait().expect("probed daemon exits");
        let stats = replies.pop().expect("stats reply");
        assert!(stats.contains("durability on"), "recovered daemon not durable: {stats}");
        replies.push(format!("{:?}", stable_stats(&stats)));
        replies.iter().map(|r| scrub_times(r)).collect()
    };
    let crashed = probe(&crash_dir);
    let uncrashed = probe(&ref_dir);
    assert_eq!(
        crashed, uncrashed,
        "mid-epoch SIGKILL recovery diverged from the uncrashed reference"
    );

    // Attach replayed every journaled command, auto-advise included.
    assert!(
        crashed[0].contains(&format!(
            "attached durable session 1: {} journaled command(s) replayed",
            SCRIPT.len()
        )),
        "wrong replay count: {}",
        crashed[0]
    );
    assert!(crashed[1].contains("pin obs(ra)"), "constraints missing: {}", crashed[1]);
    assert!(
        crashed[1].contains("feed select id from obs where dec > 0.7"),
        "pending feed lost: {}",
        crashed[1]
    );
    // The two unfolded feeds survived the crash as pending statements.
    assert!(crashed[2].contains("2 pending statement(s)"), "{}", crashed[2]);
    // Closing the epoch after recovery drifts (new template takes most
    // of the mass), re-advises, and still honors both constraints.
    assert!(crashed[3].contains("re-advising"), "{}", crashed[3]);
    assert!(crashed[3].contains("CREATE INDEX idx_obs_ra ON obs (ra)"), "{}", crashed[3]);
    assert!(!crashed[3].contains("idx_src_mag"), "ban lost in recovery: {}", crashed[3]);

    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_file(&ddl_path).ok();
}
