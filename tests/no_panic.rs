//! No-panic fuzz gate for the interactive surface (ISSUE 2 tentpole).
//!
//! Drives well over 500 randomized inputs — malformed console command
//! lines, corrupt workload files, and sessions with adversarial catalog
//! statistics (empty histograms, NaN frequencies, zero row counts,
//! all-null columns) — through a live [`Console`]. Every input must come
//! back as a [`ConsoleReply`] (`Output` or a typed error); a panic that
//! escapes the console aborts the test process, so the suite passing IS
//! the no-abort guarantee.
//!
//! Generation is deterministic (vendored proptest, fixed seed,
//! `PROPTEST_SEED` to override), so a failure reproduces exactly.

use std::sync::Once;

use parinda::{Catalog, Console, ConsoleReply, Datum, Design, Parinda, SqlType};
use parinda_catalog::{Column, ColumnStats};
use proptest::prelude::*;

/// Contained panics still run the global panic hook; silence it so the
/// fuzz run's output stays readable. Escaping panics still fail the test.
fn quiet_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

/// A tiny schema the fuzz console starts from, so table/column names in
/// generated commands sometimes resolve.
fn tiny_session() -> Parinda {
    Parinda::from_ddl(
        "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION, dec DOUBLE PRECISION,
                           flags BIGINT, PRIMARY KEY (id)) ROWS 5000;
         CREATE TABLE src (id BIGINT NOT NULL, mag DOUBLE PRECISION, PRIMARY KEY (id)) ROWS 800;
         CREATE INDEX i_obs_ra ON obs (ra);",
    )
    .expect("fixed DDL parses")
}

/// One fuzzed console line: anything from valid commands through mangled
/// arguments to raw printable/control garbage.
fn command_line() -> BoxedStrategy<String> {
    let verb = prop_oneof![
        Just("load".to_string()),
        Just("workload".to_string()),
        Just("show".to_string()),
        Just("describe".to_string()),
        Just("explain".to_string()),
        Just("analyze".to_string()),
        Just("whatif".to_string()),
        Just("suggest".to_string()),
        Just("threads".to_string()),
        Just("budget".to_string()),
        Just("cancel".to_string()),
        Just("eval".to_string()),
        Just("clear".to_string()),
        Just("help".to_string()),
        Just("feed".to_string()),
        Just("epoch".to_string()),
        Just("drift".to_string()),
        Just("advise".to_string()),
        Just("pin".to_string()),
        Just("ban".to_string()),
        Just("accept".to_string()),
        Just("reject".to_string()),
        Just("unpin".to_string()),
        Just("unban".to_string()),
    ];
    let word = prop_oneof![
        "[a-z_]{1,10}",
        "[ -~]{0,12}",
        // row counts: tiny (cheap to load) or absurd (must be rejected) —
        // never mid-sized values that would make the fuzz run slow
        "[0-9]{1,2}",
        "[0-9]{15,25}",
        Just("obs".to_string()),
        Just("src".to_string()),
        Just("ra,dec".to_string()),
        Just("no_such_table".to_string()),
        Just("'; DROP TABLE obs; --".to_string()),
        Just("\u{0}\u{1b}[31m\u{7f}".to_string()),
        Just("空 テーブル ∞".to_string()),
    ];
    let sqlish = prop_oneof![
        Just("SELECT".to_string()),
        Just("select id from obs where".to_string()),
        Just("SELECT COUNT(*) FROM obs GROUP BY".to_string()),
        Just("select * from src where mag <= ".to_string()),
        Just("select id from obs where ra between 1 and".to_string()),
        Just("((((".to_string()),
        Just("select id from obs where flags in (".to_string()),
        "[ -~]{0,60}",
    ];
    prop_oneof![
        // verb + 0-4 mangled args
        (verb, prop::collection::vec(word, 0..4)).prop_map(|(v, args)| {
            let mut line = v;
            for a in args {
                line.push(' ');
                line.push_str(&a);
            }
            line
        }),
        // explain/analyze over malformed SQL
        (prop_oneof![Just("explain "), Just("analyze ")], sqlish)
            .prop_map(|(p, s)| format!("{p}{s}")),
        // raw garbage
        "[ -~]{0,50}".prop_map(|s| s),
        Just("\t\t;;;;".to_string()),
        Just(String::new()),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    // ≥ 120 cases × ≥ 5 lines = ≥ 600 randomized command lines through a
    // live console: no input may abort the process.
    #[test]
    fn console_never_aborts(lines in prop::collection::vec(command_line(), 5..9)) {
        quiet_panics();
        let mut console = Console::with_session(tiny_session());
        for line in &lines {
            match console.run_line(line) {
                ConsoleReply::Output(_) | ConsoleReply::Error(_) => {}
                ConsoleReply::Quit => {} // REPL would exit; the console itself is fine
            }
        }
        // the console survives and still answers
        let reply = console.run_line("help");
        prop_assert!(matches!(reply, ConsoleReply::Output(_)));
    }

    // Corrupt workload files — semicolons in literals, truncated
    // statements, binary noise, bogus weights — must produce a typed
    // error or a (possibly empty) workload, never a crash.
    #[test]
    fn malformed_workload_files_never_abort(
        chunks in prop::collection::vec(prop_oneof![
            Just("SELECT id FROM obs;".to_string()),
            Just("SELECT id FROM obs WHERE name LIKE 'a;b';".to_string()),
            Just("-- weight: 3".to_string()),
            Just("-- weight: NaN".to_string()),
            Just("-- weight: 99999999999999999999".to_string()),
            Just("SELECT FROM WHERE;".to_string()),
            Just("'unterminated literal".to_string()),
            Just("SELECT 'it''s; fine' FROM obs".to_string()),
            "[ -~]{0,40}",
            Just("\u{0}\u{1}\u{2}".to_string()),
            Just(";;;".to_string()),
        ], 1..8),
        case in 0u32..1_000_000,
    ) {
        quiet_panics();
        let path = std::env::temp_dir().join(format!("parinda_no_panic_{case}_{}.sql", chunks.len()));
        std::fs::write(&path, chunks.join("\n")).expect("temp file");
        let mut console = Console::with_session(tiny_session());
        let reply = console.run_line(&format!("workload file {}", path.display()));
        std::fs::remove_file(&path).ok();
        prop_assert!(matches!(reply, ConsoleReply::Output(_) | ConsoleReply::Error(_)));
        // the console survives and still answers
        prop_assert!(matches!(console.run_line("show tables"), ConsoleReply::Output(_)));
    }

    // Adversarial catalog statistics: empty histograms, NaN null
    // fractions and frequencies, zero/NaN row counts, all-null columns.
    // Planning and advising over them must return answers or typed
    // errors, never abort.
    #[test]
    fn adversarial_stats_never_abort(
        rows in prop_oneof![Just(0u64), Just(1u64), 2u64..5_000],
        null_frac in prop_oneof![Just(f64::NAN), Just(-1.0), Just(0.0), Just(1.0), Just(2.0), 0.0f64..1.0],
        n_distinct in prop_oneof![Just(f64::NAN), Just(0.0), Just(-0.5), Just(-2.0), 1.0f64..100.0],
        hist_kind in 0u8..4,
        mcv_kind in 0u8..4,
        budget_mb in 1u64..64,
    ) {
        quiet_panics();
        let histogram = match hist_kind {
            0 => vec![],
            1 => vec![Datum::Int(7)], // single bound: degenerate
            2 => vec![Datum::Float(f64::NAN), Datum::Float(f64::INFINITY), Datum::Float(3.0)],
            _ => (0..10).map(Datum::Int).collect(),
        };
        let mcv = match mcv_kind {
            0 => vec![],
            1 => vec![(Datum::Int(3), f64::NAN), (Datum::Null, 0.4)],
            2 => vec![(Datum::Int(3), 2.0)], // frequency > 1
            _ => vec![(Datum::Int(3), 0.9)],
        };
        let stats = ColumnStats {
            null_frac,
            n_distinct,
            avg_width: 8.0,
            mcv,
            histogram,
            correlation: f64::NAN,
        };
        let all_null = ColumnStats {
            null_frac: 1.0,
            n_distinct: 0.0,
            avg_width: 8.0,
            mcv: vec![],
            histogram: vec![],
            correlation: 0.0,
        };

        let mut cat = Catalog::new();
        let cols = vec![
            Column::new("a", SqlType::Int8),
            Column::new("b", SqlType::Float8),
        ];
        let id = cat.create_table("t", cols, rows);
        cat.set_column_stats(id, 0, stats);
        cat.set_column_stats(id, 1, all_null);
        cat.create_index("i_a", "t", &["a"]);

        let mut console = Console::with_session(Parinda::new(cat));
        for line in [
            "explain select a from t where a < 3",
            "explain select a from t where a <= 3 and b > 0.5",
            "explain select b from t where b is null",
            "explain select a from t where a between 1 and 7",
            "whatif index w_b t b",
            "describe t",
        ] {
            let reply = console.run_line(line);
            prop_assert!(
                matches!(reply, ConsoleReply::Output(_) | ConsoleReply::Error(_)),
                "{line}: {reply:?}"
            );
        }

        // And the advisors over the same degenerate statistics.
        let session = Parinda::new({
            let mut cat = Catalog::new();
            let cols = vec![Column::new("a", SqlType::Int8), Column::new("b", SqlType::Float8)];
            let id = cat.create_table("t", cols, rows);
            cat.set_column_stats(id, 0, ColumnStats {
                null_frac,
                n_distinct,
                avg_width: 8.0,
                mcv: vec![],
                histogram: vec![],
                correlation: 0.0,
            });
            cat
        });
        let workload = vec![
            parinda::parse_select("SELECT a FROM t WHERE a <= 5").expect("fixed SQL"),
            parinda::parse_select("SELECT b FROM t WHERE a > 2").expect("fixed SQL"),
        ];
        let _ = session.evaluate_design(&workload, &Design::new());
        let _ = session.suggest_indexes(&workload, budget_mb << 20, parinda::SelectionMethod::Greedy);
    }
}
