//! Trace-layer regression suite: observability must be *write-only* for
//! the pipeline. Recording on or off, any thread count — every advisor
//! answer stays bit-identical, the span tree keeps the same shape, and
//! the JSON export obeys the documented `parinda-trace/v1` schema.

use parinda::{
    AutoPartConfig, Counter, Parallelism, Parinda, SelectionMethod, Trace,
};
use parinda_workload::{sdss_catalog, sdss_workload, synthesize_stats, SdssScale};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn session(threads: usize, trace: Trace) -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    let mut s = Parinda::new(cat);
    s.set_parallelism(Parallelism::fixed(threads));
    s.set_trace(trace);
    s
}

/// Fingerprint of an advisor run: everything the user can observe, with
/// costs at bit precision.
fn advise_fingerprint(s: &Parinda, wl: &[parinda::Select]) -> (Vec<String>, Vec<(u64, u64)>) {
    let sugg = s.suggest_indexes(wl, 2_u64 << 30, SelectionMethod::Ilp).expect("advise");
    (
        sugg.indexes.iter().map(|i| format!("{}/{}", i.table, i.name)).collect(),
        sugg.report
            .per_query
            .iter()
            .map(|q| (q.cost_before.to_bits(), q.cost_after.to_bits()))
            .collect(),
    )
}

/// Recording must never perturb results: the ILP selection, per-query
/// costs, and workload cost are bit-identical with tracing off, with a
/// no-op recorder path (disabled), and with a live recording sink.
#[test]
fn recording_never_changes_advisor_results() {
    let wl = sdss_workload();
    let off = session(2, Trace::disabled());
    let on = session(2, Trace::recording());
    assert_eq!(advise_fingerprint(&off, &wl), advise_fingerprint(&on, &wl));
    assert_eq!(
        off.workload_cost(&wl).unwrap().to_bits(),
        on.workload_cost(&wl).unwrap().to_bits(),
        "workload cost must be bit-identical with tracing on"
    );
    // the recording run actually recorded something
    let report = on.trace().snapshot();
    assert!(report.counter(Counter::OptimizerInvocations) > 0);
    assert!(!report.spans.is_empty());
}

/// The span tree's *shape* — paths and visit counts — is a contract:
/// scheduling may reorder work but never change what phases ran or how
/// often. Timings differ run to run; shape may not.
#[test]
fn span_tree_shape_identical_at_any_thread_count() {
    let wl = sdss_workload();
    let mut reference: Option<Vec<(String, u64)>> = None;
    for threads in THREAD_COUNTS {
        let trace = Trace::recording();
        let s = session(threads, trace.clone());
        s.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).expect("ilp");
        s.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Greedy).expect("greedy");
        s.suggest_partitions(&wl, AutoPartConfig::default()).expect("autopart");
        s.explain_sql_breakdown("SELECT objid FROM photoobj WHERE ra > 100", None)
            .expect("explain");
        let shape = trace.snapshot().shape();
        assert!(
            shape.iter().any(|(p, _)| p == "inum_build/populate"),
            "nested spans recorded: {shape:?}"
        );
        match &reference {
            None => reference = Some(shape),
            Some(r) => {
                assert_eq!(r, &shape, "span tree shape differs at {threads} threads")
            }
        }
    }
}

/// Deterministic counters — everything except the cache hit/miss split,
/// which can legitimately vary when two threads race to fill the same
/// memo slot — are identical at any thread count; hits+misses is itself
/// deterministic.
#[test]
fn deterministic_counters_identical_at_any_thread_count() {
    let wl = sdss_workload();
    let mut reference: Option<Vec<(&'static str, u64)>> = None;
    for threads in THREAD_COUNTS {
        let trace = Trace::recording();
        let s = session(threads, trace.clone());
        s.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).expect("ilp");
        let r = trace.snapshot();
        let stable: Vec<(&'static str, u64)> = Counter::ALL
            .iter()
            .filter(|c| !matches!(c, Counter::InumCacheHits | Counter::InumCacheMisses))
            .map(|&c| (c.name(), r.counter(c)))
            .chain([(
                "inum_cache_accesses",
                r.counter(Counter::InumCacheHits) + r.counter(Counter::InumCacheMisses),
            )])
            .collect();
        match &reference {
            None => reference = Some(stable),
            Some(prev) => {
                assert_eq!(prev, &stable, "counters differ at {threads} threads")
            }
        }
    }
}

/// `--trace-json` schema contract (`parinda-trace/v1`), as documented in
/// EXPERIMENTS.md: a `schema` tag, a `spans` object of
/// `{count, total_ns}` entries, and a `counters` object listing every
/// counter including zeros.
#[test]
fn trace_json_obeys_documented_schema() {
    let wl = sdss_workload();
    let trace = Trace::recording();
    let s = session(1, trace.clone());
    s.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).expect("ilp");
    let json = trace.snapshot().to_json();

    assert!(json.starts_with("{\n"), "top-level object");
    assert!(json.trim_end().ends_with('}'), "closed object");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces:\n{json}"
    );
    assert!(json.contains("\"schema\": \"parinda-trace/v1\""), "{json}");
    assert!(json.contains("\"spans\": {"), "{json}");
    assert!(json.contains("\"counters\": {"), "{json}");
    // every counter appears exactly once, zeros included
    for c in Counter::ALL {
        assert_eq!(
            json.matches(&format!("\"{}\":", c.name())).count(),
            1,
            "counter {} missing or duplicated in:\n{json}",
            c.name()
        );
    }
    // every span entry carries both fields
    assert_eq!(
        json.matches("\"count\":").count(),
        json.matches("\"total_ns\":").count(),
        "span entries are {{count, total_ns}} pairs:\n{json}"
    );
    assert!(json.contains("\"inum_build\""), "inum phase exported: {json}");
}

/// The streaming verbs record their own phases (`epoch_advance`,
/// `drift_check`, `inum_delta`) and counters, and like everything else
/// in the pipeline both are identical at any thread count.
#[test]
fn streaming_counters_and_spans_are_recorded() {
    use parinda::{Console, ConsoleReply};
    let mut reference: Option<(Vec<(String, u64)>, Vec<(&'static str, u64)>)> = None;
    for threads in THREAD_COUNTS {
        let trace = Trace::recording();
        let mut c = Console::with_session(session(threads, Trace::disabled()));
        c.set_trace(trace.clone());
        c.run_line(&format!("threads {threads}"));
        for line in [
            "advise auto on",
            "advise budget 64",
            "feed SELECT objid FROM photoobj WHERE ra > 100",
            "feed SELECT objid FROM photoobj WHERE ra > 150",
            "feed SELECT objid FROM photoobj WHERE dec < 5",
            "epoch", // first epoch: drift maximal by convention, advises fresh
            "feed SELECT objid FROM photoobj WHERE dec < 30",
            "feed SELECT ra FROM photoobj WHERE objid = 1",
            "feed SELECT ra FROM photoobj WHERE objid = 2",
            "epoch", // drifted: re-advises through apply_delta
        ] {
            match c.run_line(line) {
                ConsoleReply::Output(_) => {}
                other => panic!("`{line}` failed: {other:?}"),
            }
        }
        let r = trace.snapshot();
        assert_eq!(r.counter(Counter::StreamStatementsFed), 6);
        assert_eq!(r.counter(Counter::EpochsAdvanced), 2);
        assert_eq!(r.counter(Counter::DriftEvents), 2);
        assert!(
            r.counter(Counter::InumDeltaReused) > 0,
            "the second advise must reuse surviving templates"
        );
        assert!(
            r.counter(Counter::InumDeltaRebuilt) > 0,
            "the second advise must rebuild the arrived template"
        );
        let shape = r.shape();
        for phase in ["epoch_advance", "drift_check", "inum_delta"] {
            assert!(
                shape.iter().any(|(p, _)| p == phase || p.starts_with(&format!("{phase}/"))),
                "phase {phase} missing from span tree: {shape:?}"
            );
        }
        let stable: Vec<(&'static str, u64)> = Counter::ALL
            .iter()
            .filter(|c| !matches!(c, Counter::InumCacheHits | Counter::InumCacheMisses))
            .map(|&c| (c.name(), r.counter(c)))
            .collect();
        match &reference {
            None => reference = Some((shape, stable)),
            Some(prev) => assert_eq!(
                prev,
                &(shape, stable),
                "streaming spans/counters differ at {threads} threads"
            ),
        }
    }
}

/// The disabled trace is inert end to end: no spans, no counters, and
/// `snapshot()` returns the canonical empty report (all counters zero).
#[test]
fn disabled_trace_records_nothing() {
    let wl = sdss_workload();
    let s = session(2, Trace::disabled());
    s.suggest_indexes(&wl, 2_u64 << 30, SelectionMethod::Ilp).expect("ilp");
    let r = s.trace().snapshot();
    assert!(r.spans.is_empty());
    for c in Counter::ALL {
        assert_eq!(r.counter(c), 0, "{} leaked through a disabled trace", c.name());
    }
}
