//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the `rand` API it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`) and `Rng::gen` for the
//! primitive types the workload generators draw. The stream is produced
//! by SplitMix64 — statistically fine for synthetic data and benchmarks,
//! and fully deterministic per seed (which is all the callers rely on).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing drawing methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform draw from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(5..10);
            assert!((5..10).contains(&v));
        }
    }
}
