//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion API its benches use: `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs `sample_size`
//! timed iterations after one warm-up iteration and reports the mean.
//! Passing `--test` (as `cargo bench -- --test` does) runs every
//! benchmark exactly once — the smoke mode CI uses.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored: every batch is one
/// iteration, which matches the only variant the benches use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Drives the measured routine.
pub struct Bencher {
    iters: u64,
    /// Total measured time, reported by the group after the routine runs.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Accepted and ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let iters = if self.criterion.test_mode { 1 } else { self.sample_size.max(1) };
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / iters as f64;
        println!("{}/{id}: mean {:.3} ms/iter ({iters} iters)", self.name, mean * 1e3);
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, &mut |b| f(b, input));
        self
    }

    /// End the group (printing happens eagerly; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` smoke mode; other harness flags
        // (--bench, filters) are accepted and ignored.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.sample_size(10).bench_function("count", |b| b.iter(|| runs += 1));
        // warm-up + 1 timed iteration in test mode
        assert_eq!(runs, 2);
        group.finish();
    }

    #[test]
    fn iter_batched_fresh_inputs() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::PerIteration)
        });
    }
}
