//! `prop::option` — strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `None` a quarter of the time, `Some` otherwise.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
