//! Case execution: configuration, deterministic RNG, and the runner the
//! `proptest!` macro drives.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Runner configuration (only the field the tests use).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to draw per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias kept for API compatibility with real proptest.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs the configured number of cases with per-case reseeded RNGs, so
/// any failing case can be replayed from its printed seed.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Runner for the named test. The base seed is fixed (reproducible CI)
    /// unless `PROPTEST_SEED` overrides it.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        let base_seed = env_seed.unwrap_or(0x5eed_0000_0000_0000) ^ h.finish();
        TestRunner { config, base_seed }
    }

    /// Draw and run every case; panics on the first failure with enough
    /// context to replay it.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            let seed = self
                .base_seed
                .wrapping_add((i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            let mut rng = TestRng::new(seed);
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest case {i}/{} failed (case seed {seed:#x}): {e}",
                    self.config.cases
                );
            }
        }
    }
}
