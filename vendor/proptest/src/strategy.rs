//! The [`Strategy`] trait, its combinators, and strategies for primitive
//! types, ranges, tuples, and regex-lite string patterns.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// Upper bound on rejection-sampling retries in `prop_filter`.
const FILTER_RETRIES: usize = 10_000;

/// A generator of values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: `generate` directly yields
/// a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy for the next
    /// depth level. Each level yields a leaf with probability 1/3, so
    /// generated sizes stay bounded. `_desired_size` and
    /// `_expected_branch_size` exist for signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), branch.clone(), branch]).boxed();
        }
        strat
    }

    /// Type-erased, cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased strategy handle (clonable, like real proptest's).
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected {FILTER_RETRIES} candidates", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between alternatives (what `prop_oneof!` builds).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union of the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------- primitives via any::<T>() ----------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // bounded arbitrary floats: full-domain bit patterns (NaN, inf)
        // break more tests than they find
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<bool>()`, `any::<i64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------- ranges ----------

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------- tuples ----------

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---------- regex-lite string patterns ----------

/// `&str` literals act as string strategies over a regex subset:
/// literal characters, `[a-z0-9_%]`-style classes (ranges and singletons),
/// and `{n}` / `{min,max}` quantifiers.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (chars, min, max) in &elements {
            let n = if max > min {
                *min + rng.below((max - min + 1) as u64) as usize
            } else {
                *min
            };
            for _ in 0..n {
                let i = rng.below(chars.len() as u64) as usize;
                out.push(chars[i]);
            }
        }
        out
    }
}

/// Parse the pattern into (alternatives, min-reps, max-reps) elements.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut out: Vec<(Vec<char>, usize, usize)> = Vec::new();
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated [ in pattern {pat:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // optional quantifier
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
        out.push((set, min, max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_shapes() {
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literal_and_quantifier() {
        let mut rng = TestRng::new(1);
        let s = "ab{3}c".generate(&mut rng);
        assert_eq!(s, "abbbc");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let v = (-5i64..17).generate(&mut rng);
            assert!((-5..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::new(3);
        let s = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
