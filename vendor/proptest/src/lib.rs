//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait with the
//! `prop_map` / `prop_filter` / `prop_flat_map` / `prop_recursive`
//! combinators, strategies for ranges, tuples, `&str` regex-lite
//! patterns, `prop::collection::vec` and `prop::option::of`, and the
//! `proptest!` / `prop_assert*` / `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its seed and case index;
//! * generation is deterministic (fixed base seed, overridable with the
//!   `PROPTEST_SEED` environment variable), so CI runs are reproducible;
//! * `.proptest-regressions` files are ignored.

pub mod strategy;
pub mod test_runner;

/// Modules mirroring proptest's `prop::` namespace.
pub mod collection;
pub mod option;

/// `proptest::prelude` — everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest! { ... }` block: each `#[test] fn name(pat in strategy, ...)`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    // Tolerate (and drop) doc comments on the test fns: they expand to
    // `#[doc = ...]` attributes, which would otherwise miss the `#[test]`
    // arm and send the catch-all rule into infinite recursion.
    (@munch ($cfg:expr)
        #[doc = $doc:expr]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                result
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
