//! `prop::collection` — collection strategies (only `vec` is needed).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Permitted sizes for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// exclusive
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

/// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min;
        let n = if span > 1 {
            self.size.min + rng.below(span as u64) as usize
        } else {
            self.size.min
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)` — vectors of generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
