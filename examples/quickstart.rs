//! Quickstart: build the SDSS catalog, run the automatic index advisor,
//! print the suggestion and benefit report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parinda::{Parinda, SelectionMethod};
use parinda_catalog::MetadataProvider;
use parinda_workload::{sdss_catalog, sdss_workload, synthesize_stats, SdssScale};

fn main() {
    // 1. The database: a synthetic SDSS DR4 5% sample (statistics only —
    //    the advisor never needs actual rows, exactly like the paper).
    let (mut catalog, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut catalog, &tables);
    println!(
        "catalog: {} tables, {:.1} GB simulated",
        catalog.all_tables().len(),
        catalog.total_size_bytes() as f64 / (1 << 30) as f64
    );

    // 2. The workload: the 30 prototypical SDSS queries.
    let workload = sdss_workload();
    println!("workload: {} queries", workload.len());

    // 3. Suggest indexes with the ILP technique under a 4 GB budget.
    let session = Parinda::new(catalog);
    let budget = 4u64 << 30;
    let suggestion = session
        .suggest_indexes(&workload, budget, SelectionMethod::Ilp)
        .expect("advisor runs");

    println!("\nsuggested indexes (budget {:.1} GB):", budget as f64 / (1 << 30) as f64);
    for idx in &suggestion.indexes {
        println!(
            "  CREATE INDEX {} ON {} ({});   -- {:.1} MB",
            idx.name,
            idx.table,
            idx.columns.join(", "),
            idx.size_bytes as f64 / (1 << 20) as f64
        );
    }

    println!("\n{}", suggestion.report.render());
    println!(
        "ILP proven optimal: {}",
        if suggestion.proven_optimal { "yes" } else { "no (node limit)" }
    );
}
