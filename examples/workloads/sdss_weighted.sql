-- PARINDA demo workload file (subset of the 30 SDSS queries, with weights)
-- weight: 10
SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180.0 AND 181.0 AND dec BETWEEN 0.0 AND 1.0;

-- weight: 5
SELECT objid, modelmag_u, modelmag_g, modelmag_r, modelmag_i, modelmag_z FROM photoobj
WHERE objid = 588015509806252132;

SELECT type, COUNT(*) FROM photoobj GROUP BY type;

-- weight: 3
SELECT p.objid, s.z FROM photoobj p, specobj s
WHERE p.objid = s.bestobjid AND s.z BETWEEN 0.08 AND 0.12;

SELECT n.objid, n.neighborobjid, n.distance FROM neighbors n
WHERE n.distance < 0.00139 AND n.type = 3 AND n.neighbortype = 3;
