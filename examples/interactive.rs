//! Scenario 1 / Figure 3: interactive index + partition selection.
//!
//! The DBA hand-picks what-if features; the tool simulates them, reports
//! average and per-query benefits, offers the rewritten queries, and — on
//! materialized data — verifies the simulation against reality.
//!
//! ```text
//! cargo run --release --example interactive
//! ```

use parinda::{verify_whatif_index, Design, Parinda, WhatIfIndex, WhatIfPartition};
use parinda_workload::{generate_and_load, sdss_catalog, sdss_workload, SdssScale};

fn main() {
    // Laptop scale with real rows, so verification can actually build.
    let (mut catalog, tables) = sdss_catalog(SdssScale::laptop(20_000));
    let mut db = parinda::Database::new();
    generate_and_load(&mut catalog, &mut db, &tables, 42);
    let mut session = Parinda::with_database(catalog, db);
    let workload = sdss_workload();

    // The DBA tries: two indexes + one astrometry partition.
    let design = Design::new()
        .with_index(WhatIfIndex::new("w_photo_objid", "photoobj", &["objid"]))
        .with_index(WhatIfIndex::new("w_spec_best", "specobj", &["bestobjid"]))
        .with_partition(WhatIfPartition::new(
            "photoobj_astro",
            "photoobj",
            &["ra", "dec", "type", "modelmag_r", "modelmag_g"],
        ));

    println!("evaluating a hand-picked what-if design over 30 queries…\n");
    let (report, rewritten) = session.evaluate_design(&workload, &design).expect("evaluation");
    println!("{}", report.render());

    // Save-rewritten-queries pane: show the ones that changed.
    println!("rewritten queries:");
    for (orig, rw) in workload.iter().zip(&rewritten) {
        if orig != rw {
            println!("  {rw};");
        }
    }

    // "Compare the execution plan of the what-if design with the execution
    // plan of the same materialized physical design."
    let probe = parinda::parse_select("SELECT ra, dec FROM photoobj WHERE objid = 777").unwrap();
    let def = WhatIfIndex::new("w_photo_objid", "photoobj", &["objid"]);
    let v = verify_whatif_index(&mut session, &probe, &def).expect("verification");
    println!("\nverification of w_photo_objid on a point lookup:");
    println!("  what-if cost:      {:.2}", v.whatif_cost);
    println!("  materialized cost: {:.2}", v.materialized_cost);
    println!("  same access path:  {}", v.same_access_path);
    println!(
        "  pages: estimated {} vs measured {} ({:.1}% error)",
        v.estimated_pages,
        v.measured_pages,
        v.size_error() * 100.0
    );
}
