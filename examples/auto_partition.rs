//! Scenario 2 / Figure 2: automatic partition suggestion.
//!
//! Input: workload file + original design + replication-space constraint.
//! Output: suggested partitions, average/per-query benefit, the fragments
//! each query uses, and the rewritten workload.
//!
//! ```text
//! cargo run --release --example auto_partition
//! ```

use parinda::{AutoPartConfig, Parinda};
use parinda_workload::{sdss_catalog, sdss_workload, synthesize_stats, SdssScale};

fn main() {
    let (mut catalog, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut catalog, &tables);
    let session = Parinda::new(catalog);
    let workload = sdss_workload();

    // Constraint pane: allow up to 20% extra space for replicated columns.
    let base = session.catalog().total_size_bytes();
    let config = AutoPartConfig {
        replication_limit_bytes: (base / 5) as i64,
        ..Default::default()
    };
    println!(
        "running AutoPart over {} queries (replication budget {:.1} GB)…\n",
        workload.len(),
        (base / 5) as f64 / (1 << 30) as f64
    );

    let sugg = session.suggest_partitions(&workload, config).expect("autopart");

    println!("suggested partitions:");
    for p in &sugg.partitions {
        println!("  {}  (from {}): {}", p.name, p.table, p.columns.join(", "));
    }

    println!("\n{}", sugg.report.render());

    println!("rewritten workload (changed statements):");
    for (orig, rw) in workload.iter().zip(&sugg.rewritten) {
        if orig != rw {
            println!("  {rw};");
        }
    }
}
