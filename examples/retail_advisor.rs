//! The advisors on a non-SDSS schema: a retail (TPC-H-flavoured) instance,
//! showing that PARINDA's components are schema-agnostic.
//!
//! ```text
//! cargo run --release --example retail_advisor
//! ```

use parinda::{Parinda, SelectionMethod};
use parinda_catalog::MetadataProvider;
use parinda_executor::explain_analyze;
use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
use parinda_workload::{retail_catalog, retail_load, retail_workload};

fn main() {
    let (mut catalog, tables) = retail_catalog(20_000);
    let mut db = parinda::Database::new();
    println!("generating retail data (20k orders, 80k line items)…");
    retail_load(&mut catalog, &mut db, &tables, 2026);
    let mut session = Parinda::with_database(catalog, db);
    let workload = retail_workload();

    println!("\n== schema ==");
    print!("{}", parinda_catalog::describe_catalog(session.catalog()));

    let budget = session.catalog().total_size_bytes() / 4;
    let suggestion = session
        .suggest_indexes(&workload, budget, SelectionMethod::Ilp)
        .expect("advisor");
    println!("\n== suggested indexes (budget {:.1} MB) ==", budget as f64 / (1 << 20) as f64);
    for idx in &suggestion.indexes {
        println!("  CREATE INDEX {} ON {} ({});", idx.name, idx.table, idx.columns.join(", "));
    }
    println!("\n{}", suggestion.report.render());

    session.materialize_indexes(&suggestion).expect("materialize");
    println!("== EXPLAIN ANALYZE after materialization ==");
    let sql = "SELECT orderkey, totalprice FROM orders WHERE orderkey = 4242";
    println!("{sql}");
    let sel = parinda::parse_select(sql).unwrap();
    let q = bind(&sel, session.catalog()).unwrap();
    let plan =
        plan_query(&q, session.catalog(), &CostParams::default(), &PlannerFlags::default())
            .unwrap();
    print!(
        "{}",
        explain_analyze(&plan, &q, session.catalog(), session.database()).expect("analyze")
    );
}
