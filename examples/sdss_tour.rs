//! Tour of the synthetic SDSS instance: schema, statistics, the 30-query
//! workload, and EXPLAIN output for a few representative plans.
//!
//! ```text
//! cargo run --release --example sdss_tour
//! ```

use parinda::Parinda;
use parinda_catalog::MetadataProvider;
use parinda_workload::{sdss_catalog, sdss_workload_sql, synthesize_stats, SdssScale};

fn main() {
    let (mut catalog, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut catalog, &tables);

    println!("== schema ==");
    for t in catalog.all_tables() {
        println!(
            "{:<12} {:>9} rows  {:>9} pages  {:>3} columns",
            t.name,
            t.row_count,
            t.pages,
            t.columns.len()
        );
    }
    let photo = catalog.table(tables.photoobj).unwrap();
    println!(
        "\nphotoobj column sample: {} …",
        photo
            .columns
            .iter()
            .take(12)
            .map(|c| format!("{}:{}", c.name, c.ty))
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!("\n== statistics sample ==");
    for col in ["objid", "ra", "type", "modelmag_r"] {
        let ci = photo.column_index(col).unwrap();
        let s = catalog.column_stats(tables.photoobj, ci).unwrap();
        println!(
            "photoobj.{col:<12} n_distinct={:<10} null_frac={:.2} corr={:+.2} mcvs={} hist={}",
            s.n_distinct,
            s.null_frac,
            s.correlation,
            s.mcv.len(),
            s.histogram.len()
        );
    }

    println!("\n== the 30-query workload ==");
    for (i, q) in sdss_workload_sql().iter().enumerate() {
        println!("Q{:02}: {}", i + 1, q.split_whitespace().collect::<Vec<_>>().join(" "));
    }

    println!("\n== example plans ==");
    let session = Parinda::new(catalog);
    for sql in [
        "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180.0 AND 181.0 AND dec BETWEEN 0.0 AND 1.0",
        "SELECT p.objid, s.z FROM photoobj p, specobj s WHERE p.objid = s.bestobjid AND s.z BETWEEN 0.08 AND 0.12",
        "SELECT type, COUNT(*) FROM photoobj GROUP BY type",
    ] {
        println!("\n{sql}");
        print!("{}", session.explain_sql(sql).expect("explains"));
    }
}
