//! Scenario 3: automatic index suggestion under a space budget, comparing
//! the paper's ILP technique against the greedy baseline, then physically
//! creating the winning set ("the user has the option to physically create
//! the suggested set of indexes on disk") and timing the workload before
//! and after on real data.
//!
//! ```text
//! cargo run --release --example auto_index
//! ```

use std::time::Instant;

use parinda::{Parinda, SelectionMethod};
use parinda_executor::execute;
use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
use parinda_workload::{generate_and_load, sdss_catalog, sdss_workload, SdssScale};

fn run_workload(session: &Parinda, workload: &[parinda::Select]) -> std::time::Duration {
    let params = CostParams::default();
    let flags = PlannerFlags::default();
    let start = Instant::now();
    for sel in workload {
        let q = bind(sel, session.catalog()).expect("binds");
        let p = plan_query(&q, session.catalog(), &params, &flags).expect("plans");
        execute(&p, session.catalog(), session.database()).expect("executes");
    }
    start.elapsed()
}

fn main() {
    let (mut catalog, tables) = sdss_catalog(SdssScale::laptop(30_000));
    let mut db = parinda::Database::new();
    println!("generating & loading laptop-scale SDSS data…");
    generate_and_load(&mut catalog, &mut db, &tables, 2026);
    let mut session = Parinda::with_database(catalog, db);
    let workload = sdss_workload();

    let budget = 64u64 << 20; // 64 MB on the laptop-scale instance

    // Estimated comparison: ILP vs greedy.
    for (name, method) in [("ILP", SelectionMethod::Ilp), ("greedy", SelectionMethod::Greedy)] {
        let s = session.suggest_indexes(&workload, budget, method).expect("advisor");
        println!(
            "{name:>6}: {} indexes, {:.1} MB, estimated speedup {:.2}x",
            s.indexes.len(),
            s.indexes.iter().map(|i| i.size_bytes).sum::<u64>() as f64 / (1 << 20) as f64,
            s.report.speedup()
        );
    }

    // Take the ILP suggestion, materialize it, and measure for real.
    let suggestion = session
        .suggest_indexes(&workload, budget, SelectionMethod::Ilp)
        .expect("advisor");
    println!("\nsuggested set:");
    for idx in &suggestion.indexes {
        println!("  CREATE INDEX {} ON {} ({});", idx.name, idx.table, idx.columns.join(", "));
    }

    let before = run_workload(&session, &workload);
    println!("\nworkload wall-clock before: {before:.2?}");

    let t0 = Instant::now();
    session.materialize_indexes(&suggestion).expect("materialization");
    println!("building {} indexes took {:.2?}", suggestion.indexes.len(), t0.elapsed());

    let after = run_workload(&session, &workload);
    println!("workload wall-clock after:  {after:.2?}");
    println!(
        "measured speedup: {:.2}x (estimated {:.2}x)",
        before.as_secs_f64() / after.as_secs_f64(),
        suggestion.report.speedup()
    );
}
