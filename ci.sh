#!/usr/bin/env bash
# CI gate: build, full test suite, the determinism suite under forced
# parallelism, and a smoke run of the E8 scaling benchmark.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: tests"
cargo test -q

echo "==> determinism suite (PARINDA_THREADS=2)"
PARINDA_THREADS=2 cargo test -q --test determinism

echo "==> e8 parallel-scaling bench (smoke)"
cargo bench -p parinda-bench --bench e8_parallel_scaling -- --test

echo "==> ci green"
