#!/usr/bin/env bash
# CI gate: warnings-as-errors build, full test suite, the determinism
# suite under forced parallelism, the no-panic fuzz gate (reproducible
# seed), the failpoint matrix, the parinda-lint static-analysis pass
# (never-crash / determinism / lock-discipline / failpoint-coverage
# contracts), its fixture corpus, and a smoke run of the E8 bench.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build"
cargo build --release

echo "==> warnings-as-errors build"
RUSTFLAGS="-D warnings" cargo build --workspace

echo "==> tier-1: tests (whole workspace; includes the lint fixture corpus)"
cargo test -q --workspace

echo "==> determinism suite (PARINDA_THREADS=2)"
PARINDA_THREADS=2 cargo test -q --test determinism

echo "==> no-panic fuzz gate (tests/no_panic.rs, extra seed)"
cargo test -q --test no_panic
# Reproducible extra-seed leg: the seed defaults to the current epoch
# but is echoed so a red run can be replayed exactly with
#   PARINDA_CI_SEED=<seed> ./ci.sh
PARINDA_CI_SEED="${PARINDA_CI_SEED:-$(date +%s)}"
echo "    fuzz seed: PARINDA_CI_SEED=${PARINDA_CI_SEED} (set this env var to replay)"
PROPTEST_SEED="${PARINDA_CI_SEED}" cargo test -q --test no_panic

echo "==> failpoint matrix (every site x err/panic/delay x 1/2/8 threads)"
cargo test -q --features failpoints --test failpoints

echo "==> daemon leg (parinda-server: 10 concurrent wire clients against one live daemon)"
daemon_log="$(mktemp)"
client_dir="$(mktemp -d)"
./target/release/parinda-cli serve --listen 127.0.0.1:0 --load paper > "$daemon_log" &
daemon_pid=$!
port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$daemon_log")"
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "daemon never announced its port"; exit 1; }

# Frame headers carry payload byte counts and DEGRADED lines carry wall
# clock; scrub both so concurrent transcripts can be diffed bytewise.
scrub() {
    sed -e 's/^ok [0-9][0-9]*$/ok/' \
        -e 's/^err \([a-z]*\) [0-9][0-9]*$/err \1/' \
        -e 's/after [0-9.]* ms/after <time> ms/'
}

replay_client() {  # one scripted advisor session, transcript to stdout
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'show tables\nworkload sdss\nworkload stats\nwhatif index w_ra photoobj ra\nshow design\nsuggest indexes 512 greedy\nquit\n' >&3
    cat <&3
    exec 3<&- 3>&-
}
exhauster_client() {  # runs its advisor under a 1-round budget cap
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'workload sdss\nbudget rounds 1\nsuggest indexes 512 greedy\nquit\n' >&3
    cat <&3
    exec 3<&- 3>&-
}
canceller_client() {  # fires `cancel` while its own request is in flight
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'workload sdss\nsuggest indexes 2048 ilp\n' >&3
    sleep 0.2
    printf 'cancel\nquit\n' >&3
    cat <&3
    exec 3<&- 3>&-
}

client_pids=()
for i in $(seq 1 8); do
    replay_client > "$client_dir/replay.$i" & client_pids+=($!)
done
exhauster_client > "$client_dir/exhauster" & client_pids+=($!)
canceller_client > "$client_dir/canceller" & client_pids+=($!)
for pid in "${client_pids[@]}"; do
    wait "$pid" || { echo "a wire client failed"; exit 1; }
done

# all eight identical sessions must produce byte-identical transcripts
scrub < "$client_dir/replay.1" > "$client_dir/replay.expected"
grep -q '^bye 0$' "$client_dir/replay.expected" || { echo "replay session did not end with bye"; exit 1; }
if grep -q 'DEGRADED' "$client_dir/replay.expected"; then echo "unbudgeted replay must not degrade"; exit 1; fi
for i in $(seq 2 8); do
    scrub < "$client_dir/replay.$i" | diff -u "$client_dir/replay.expected" - \
        || { echo "replay client $i diverged from client 1"; exit 1; }
done
grep -q 'DEGRADED' "$client_dir/exhauster" || { echo "budget-exhauster session never degraded"; exit 1; }
grep -q '^bye 0$' "$client_dir/canceller" || { echo "canceller session did not end cleanly"; exit 1; }

# admin session: the shared plan cache must show cross-session reuse and
# no request may have recovered a worker panic; then shut the daemon down.
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf 'server stats\nserver shutdown\n' >&3
cat <&3 > "$client_dir/admin"
exec 3<&- 3>&-
grep -q '^worker_panics_recovered 0$' "$client_dir/admin" || { echo "daemon recovered a worker panic"; cat "$client_dir/admin"; exit 1; }
if grep -q '^inum_plan_cache_hits 0$' "$client_dir/admin"; then echo "shared plan cache saw no cross-session hits"; exit 1; fi
grep -q '^inum_plan_cache_hits ' "$client_dir/admin" || { echo "server stats missing cache counters"; exit 1; }

wait "$daemon_pid" || { echo "daemon did not exit cleanly after server shutdown"; exit 1; }
rm -rf "$daemon_log" "$client_dir"
echo "    daemon leg ok: 8 identical transcripts, exhauster degraded, canceller clean, zero recovered panics"

echo "==> crash matrix (SIGKILL at mid-request / post-fsync / mid-snapshot; recovery vs uncrashed reference)"
# The mid-snapshot point needs an injectable snapshot delay: a debug
# build with the failpoint sites compiled in. Recovery is then probed
# with the release binary — the data dir format is the contract.
cargo build -q --features failpoints
crash_dir="$(mktemp -d)"

start_daemon() {  # <binary> <data-dir> <logfile>; sets $daemon_pid and $port
    : > "$3"
    "$1" serve --listen 127.0.0.1:0 --load paper --data-dir "$2" > "$3" &
    daemon_pid=$!
    port=""
    for _ in $(seq 1 200); do
        port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$3")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    [ -n "$port" ] || { echo "crash-matrix daemon never announced its port"; exit 1; }
}

read_frames() {  # read exactly $1 reply frames from fd 5 (header + sized payload)
    local i hdr n
    for ((i = 0; i < $1; i++)); do
        IFS= read -r hdr <&5 || return 1
        printf '%s\n' "$hdr"
        n="${hdr##* }"
        if [ "$n" -gt 0 ] 2>/dev/null; then
            # dd bs=1 reads exactly n bytes from the socket (head -c may
            # buffer past the frame and eat the next header)
            dd bs=1 count="$n" <&5 2>/dev/null
        fi
    done
}

send_journaled() {  # greeting + three state-mutating commands, replies awaited
    exec 5<>"/dev/tcp/127.0.0.1/$port"
    read_frames 1 > /dev/null
    printf 'workload sdss\nwhatif index w_ra photoobj ra\nthreads 3\n' >&5
    # Once the replies are back, journal-before-apply guarantees all
    # three commands are fsynced in the WAL: safe to crash.
    read_frames 3 > /dev/null
}

sigkill_daemon() {
    kill -9 "$daemon_pid"
    wait "$daemon_pid" 2>/dev/null || true
    exec 5<&- 5>&-
}

# Stable view of a recovered daemon: attach, transcript, session state,
# stats reduced to run-invariant lines (counters like wal_records and
# recovery_replayed_records legitimately differ between a crashed tail
# replay and a reference that snapshotted on its graceful shutdown).
probe_recovery() {  # <data-dir>
    start_daemon ./target/release/parinda-cli "$1" "$crash_dir/probe.log"
    exec 5<>"/dev/tcp/127.0.0.1/$port"
    printf 'server attach 1\nserver transcript\nshow design\nserver stats\nserver shutdown\n' >&5
    cat <&5 | scrub | grep -vE '^(sessions_|requests |request_errors |cancelled_inflight |server_request_spans |inum_plan_cache_|wal_records |wal_bytes |snapshots_taken |recovery_replayed_records |recovery_truncated_tail )'
    exec 5<&- 5>&-
    wait "$daemon_pid" || { echo "recovery probe daemon did not exit cleanly"; exit 1; }
}

# Uncrashed reference: same journaled commands, advisor run completed,
# graceful shutdown (drain + final snapshot).
start_daemon ./target/release/parinda-cli "$crash_dir/ref" "$crash_dir/ref.log"
send_journaled
printf 'suggest indexes 512 greedy\n' >&5
read_frames 1 > /dev/null
printf 'server shutdown\n' >&5
read_frames 2 > /dev/null || true
exec 5<&- 5>&-
wait "$daemon_pid" || { echo "reference daemon did not exit cleanly"; exit 1; }

# Kill point 1: mid-request — SIGKILL while an advisor run is in flight.
start_daemon ./target/release/parinda-cli "$crash_dir/midreq" "$crash_dir/midreq.log"
send_journaled
printf 'suggest indexes 512 greedy\n' >&5
sleep 0.3
sigkill_daemon

# Kill point 2: post-fsync — SIGKILL right after the journaled replies.
start_daemon ./target/release/parinda-cli "$crash_dir/postfsync" "$crash_dir/postfsync.log"
send_journaled
sigkill_daemon

# Kill point 3: mid-snapshot — the failpoints build stalls the shutdown
# snapshot for 2 s; SIGKILL lands inside it.
PARINDA_FAILPOINTS='wal::snapshot=delay:2000' \
    start_daemon ./target/debug/parinda-cli "$crash_dir/midsnap" "$crash_dir/midsnap.log"
send_journaled
printf 'server shutdown\n' >&5
sleep 0.5
sigkill_daemon

probe_recovery "$crash_dir/ref" > "$crash_dir/probe.ref"
grep -q 'attached durable session 1: 3 journaled command(s) replayed' "$crash_dir/probe.ref" \
    || { echo "reference recovery did not restore the session"; cat "$crash_dir/probe.ref"; exit 1; }
grep -q '^durability on$' "$crash_dir/probe.ref" \
    || { echo "reference restart is not durable"; cat "$crash_dir/probe.ref"; exit 1; }
grep -q '^worker_panics_recovered 0$' "$crash_dir/probe.ref" \
    || { echo "reference restart recovered a worker panic"; exit 1; }
for point in midreq postfsync midsnap; do
    probe_recovery "$crash_dir/$point" > "$crash_dir/probe.$point"
    diff -u "$crash_dir/probe.ref" "$crash_dir/probe.$point" \
        || { echo "crash point $point: recovered state diverged from the uncrashed reference"; exit 1; }
done
rm -rf "$crash_dir"
echo "    crash matrix ok: 3 SIGKILL points recovered bit-identical to the uncrashed reference"

echo "==> stream leg (live durable daemon: drift-triggered re-advice, pin/ban honored, SIGKILL mid-epoch)"
stream_dir="$(mktemp -d)"

# One epoch committed (drift maximal -> auto re-advise), two feeds left
# pending: the SIGKILL lands mid-epoch. Every reply is awaited, so all
# nine commands are journaled before the crash.
send_stream() {  # replies to $1
    exec 5<>"/dev/tcp/127.0.0.1/$port"
    read_frames 1 > /dev/null
    printf 'advise auto on\nadvise budget 64\npin photoobj(objid)\nban photoobj(dec)\n' >&5
    printf 'feed SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20\n' >&5
    printf 'feed SELECT objid FROM photoobj WHERE ra BETWEEN 30 AND 40\n' >&5
    printf 'epoch\n' >&5
    printf 'feed SELECT objid FROM photoobj WHERE dec > 5\n' >&5
    printf 'feed SELECT objid FROM photoobj WHERE dec > 7\n' >&5
    read_frames 9 > "$1"
}

probe_stream() {  # <data-dir>: attach, inspect the stream, close the epoch
    start_daemon ./target/release/parinda-cli "$1" "$stream_dir/probe.log"
    exec 5<>"/dev/tcp/127.0.0.1/$port"
    printf 'server attach 1\nserver transcript\ndrift\nepoch\nserver stats\nserver shutdown\n' >&5
    cat <&5 | scrub | grep -vE '^(sessions_|requests |request_errors |cancelled_inflight |server_request_spans |inum_plan_cache_|wal_records |wal_bytes |snapshots_taken |recovery_replayed_records |recovery_truncated_tail )'
    exec 5<&- 5>&-
    wait "$daemon_pid" || { echo "stream probe daemon did not exit cleanly"; exit 1; }
}

start_daemon ./target/release/parinda-cli "$stream_dir/ref" "$stream_dir/ref.log"
send_stream "$stream_dir/ref.replies"
printf 'server shutdown\n' >&5
read_frames 2 > /dev/null || true
exec 5<&- 5>&-
wait "$daemon_pid" || { echo "stream reference daemon did not exit cleanly"; exit 1; }

start_daemon ./target/release/parinda-cli "$stream_dir/crash" "$stream_dir/crash.log"
send_stream "$stream_dir/crash.replies"
sigkill_daemon

# The live epoch already enforced the constraints and re-advised on drift.
grep -q 're-advising' "$stream_dir/crash.replies" || { echo "drift did not trigger a re-advise"; exit 1; }
grep -q 'idx_photoobj_objid' "$stream_dir/crash.replies" || { echo "pinned index missing from the advised design"; exit 1; }
if grep -q 'idx_photoobj_dec ON' "$stream_dir/crash.replies"; then echo "banned index advised"; exit 1; fi

probe_stream "$stream_dir/ref" > "$stream_dir/probe.ref"
probe_stream "$stream_dir/crash" > "$stream_dir/probe.crash"
diff -u "$stream_dir/probe.ref" "$stream_dir/probe.crash" \
    || { echo "mid-epoch SIGKILL recovery diverged from the uncrashed reference"; exit 1; }
grep -q 'attached durable session 1: 9 journaled command(s) replayed' "$stream_dir/probe.crash" \
    || { echo "stream recovery did not replay all journaled commands"; cat "$stream_dir/probe.crash"; exit 1; }
grep -q '2 pending statement(s)' "$stream_dir/probe.crash" \
    || { echo "pending feeds lost in recovery"; cat "$stream_dir/probe.crash"; exit 1; }
grep -q 're-advising' "$stream_dir/probe.crash" || { echo "post-recovery epoch did not re-advise"; exit 1; }
grep -q 'idx_photoobj_objid' "$stream_dir/probe.crash" || { echo "pin lost in recovery"; exit 1; }
if grep -q 'idx_photoobj_dec ON' "$stream_dir/probe.crash"; then echo "ban lost in recovery"; exit 1; fi
rm -rf "$stream_dir"
echo "    stream leg ok: drift re-advised, pin/ban honored, mid-epoch SIGKILL recovered bit-identical"

echo "==> static analysis (parinda-lint: panic-site, nondeterminism, lock-discipline, failpoint-coverage, trace-coverage, lock-order, blocking-while-locked, guard-across-unwind)"
cargo run -q -p parinda-lint --release -- --workspace --json lint.json
python3 - <<'PYEOF' || { echo "lint.json failed validation"; exit 1; }
import json, sys
with open("lint.json") as f:
    doc = json.load(f)
assert doc["schema"] == "parinda-lint/v1", f"bad schema {doc['schema']!r}"
assert isinstance(doc["findings"], list)
for fnd in doc["findings"]:
    assert set(fnd) == {"file", "line", "rule", "message"}, f"bad finding keys {set(fnd)}"
    assert isinstance(fnd["line"], int)
stats = doc["stats"]
assert set(stats) == {"files", "files_lexed", "findings", "suppressed"}, f"bad stats keys {set(stats)}"
assert stats["findings"] == len(doc["findings"])
assert stats["files_lexed"] == stats["files"], \
    f"single-pass contract broken: {stats['files_lexed']} lexer passes over {stats['files']} files"
PYEOF

echo "==> lint fixture corpus (the lints are themselves tested)"
cargo run -q -p parinda-lint --release -- --fixtures

echo "==> e8 parallel-scaling bench (smoke)"
cargo bench -p parinda-bench --bench e8_parallel_scaling -- --test

echo "==> e9 trace-overhead bench (smoke)"
cargo bench -p parinda-bench --bench e9_trace_overhead -- --test

echo "==> E3/E4 machine-readable artifact (BENCH_e3_e4.json, schema parinda-bench/e3e4/v1)"
cargo run -q --release -p parinda-bench --bin experiments -- json e3e4 BENCH_e3_e4.json
python3 -m json.tool BENCH_e3_e4.json > /dev/null 2>&1 || \
    { echo "BENCH_e3_e4.json is not valid JSON"; exit 1; }

echo "==> E10 scaling artifact (BENCH_e10.json, schema parinda-bench/e10/v1)"
cargo run -q --release -p parinda-bench --bin experiments -- json e10 BENCH_e10.json
python3 - <<'PYEOF' || { echo "BENCH_e10.json failed validation"; exit 1; }
import json
with open("BENCH_e10.json") as f:
    d = json.load(f)
assert d["schema"] == "parinda-bench/e10/v1", d["schema"]
assert d["statements"] == 100000, d["statements"]
assert 0 < d["templates"] < d["statements"]
# the sparse matrix must stay well under the dense size
assert d["matrix_nnz"] < 0.2 * d["dense_cells"], (d["matrix_nnz"], d["dense_cells"])
# the greedy incumbent never makes the search do more work
assert d["solver_nodes_warm"] <= d["solver_nodes_cold"]
PYEOF

echo "==> ci green"
