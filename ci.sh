#!/usr/bin/env bash
# CI gate: build, full test suite, the determinism suite under forced
# parallelism, the no-panic fuzz gate, a panic-site lint on the
# interactive-surface crates, and a smoke run of the E8 scaling benchmark.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: tests (whole workspace)"
cargo test -q --workspace

echo "==> determinism suite (PARINDA_THREADS=2)"
PARINDA_THREADS=2 cargo test -q --test determinism

echo "==> no-panic fuzz gate (tests/no_panic.rs, extra seeds)"
cargo test -q --test no_panic
PROPTEST_SEED=$(date +%s) cargo test -q --test no_panic

echo "==> failpoint matrix (every site x err/panic/delay x 1/2/8 threads)"
cargo test -q --features failpoints --test failpoints

echo "==> panic-site lint (advisor path: core, sql, advisor, solver, inum, whatif, CLI)"
# The never-crash contract (DESIGN.md): no unwrap/expect/panic!/
# unreachable! outside #[cfg(test)] in the crates a console command runs
# through. `expect(` is matched with an opening quote so the SQL
# parser's `self.expect(TokenKind::…)` method is not flagged; comment
# lines (incl. doc examples) are skipped.
lint_fail=0
for f in $(find crates/core/src crates/sql/src crates/advisor/src crates/solver/src \
           crates/inum/src crates/whatif/src src/bin -name '*.rs'); do
  hits=$(awk '
    /#\[cfg\(test\)\]/ { in_tests = 1 }
    { stripped = $0; sub(/^[[:space:]]+/, "", stripped) }
    !in_tests && stripped !~ /^\/\// \
      && (/\.unwrap\(\)/ || /\.expect\("/ || /panic!\(/ || /unreachable!\(/) {
      print FILENAME ":" FNR ": " $0
    }' "$f")
  if [ -n "$hits" ]; then
    echo "$hits"
    lint_fail=1
  fi
done
if [ "$lint_fail" -ne 0 ]; then
  echo "panic-site lint FAILED: use ParindaError / par_try_map / guard instead" >&2
  exit 1
fi

echo "==> e8 parallel-scaling bench (smoke)"
cargo bench -p parinda-bench --bench e8_parallel_scaling -- --test

echo "==> ci green"
