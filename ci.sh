#!/usr/bin/env bash
# CI gate: warnings-as-errors build, full test suite, the determinism
# suite under forced parallelism, the no-panic fuzz gate (reproducible
# seed), the failpoint matrix, the parinda-lint static-analysis pass
# (never-crash / determinism / lock-discipline / failpoint-coverage
# contracts), its fixture corpus, and a smoke run of the E8 bench.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: release build"
cargo build --release

echo "==> warnings-as-errors build"
RUSTFLAGS="-D warnings" cargo build --workspace

echo "==> tier-1: tests (whole workspace; includes the lint fixture corpus)"
cargo test -q --workspace

echo "==> determinism suite (PARINDA_THREADS=2)"
PARINDA_THREADS=2 cargo test -q --test determinism

echo "==> no-panic fuzz gate (tests/no_panic.rs, extra seed)"
cargo test -q --test no_panic
# Reproducible extra-seed leg: the seed defaults to the current epoch
# but is echoed so a red run can be replayed exactly with
#   PARINDA_CI_SEED=<seed> ./ci.sh
PARINDA_CI_SEED="${PARINDA_CI_SEED:-$(date +%s)}"
echo "    fuzz seed: PARINDA_CI_SEED=${PARINDA_CI_SEED} (set this env var to replay)"
PROPTEST_SEED="${PARINDA_CI_SEED}" cargo test -q --test no_panic

echo "==> failpoint matrix (every site x err/panic/delay x 1/2/8 threads)"
cargo test -q --features failpoints --test failpoints

echo "==> static analysis (parinda-lint: panic-site, nondeterminism, lock-discipline, failpoint-coverage, trace-coverage)"
cargo run -q -p parinda-lint --release -- --workspace

echo "==> lint fixture corpus (the lints are themselves tested)"
cargo run -q -p parinda-lint --release -- --fixtures

echo "==> e8 parallel-scaling bench (smoke)"
cargo bench -p parinda-bench --bench e8_parallel_scaling -- --test

echo "==> e9 trace-overhead bench (smoke)"
cargo bench -p parinda-bench --bench e9_trace_overhead -- --test

echo "==> E3/E4 machine-readable artifact (BENCH_e3_e4.json, schema parinda-bench/e3e4/v1)"
cargo run -q --release -p parinda-bench --bin experiments -- json e3e4 BENCH_e3_e4.json
python3 -m json.tool BENCH_e3_e4.json > /dev/null 2>&1 || \
    { echo "BENCH_e3_e4.json is not valid JSON"; exit 1; }

echo "==> E10 scaling artifact (BENCH_e10.json, schema parinda-bench/e10/v1)"
cargo run -q --release -p parinda-bench --bin experiments -- json e10 BENCH_e10.json
python3 - <<'PYEOF' || { echo "BENCH_e10.json failed validation"; exit 1; }
import json
with open("BENCH_e10.json") as f:
    d = json.load(f)
assert d["schema"] == "parinda-bench/e10/v1", d["schema"]
assert d["statements"] == 100000, d["statements"]
assert 0 < d["templates"] < d["statements"]
# the sparse matrix must stay well under the dense size
assert d["matrix_nnz"] < 0.2 * d["dense_cells"], (d["matrix_nnz"], d["dense_cells"])
# the greedy incumbent never makes the search do more work
assert d["solver_nodes_warm"] <= d["solver_nodes_cold"]
PYEOF

echo "==> ci green"
